//! Parallel meta-blocking on the MapReduce substrate (reference \[4\]).
//!
//! Two of the paper's strategies are reproduced:
//!
//! * **edge-based**: map over blocks emitting one record per comparison
//!   occurrence keyed by the pair; the reducer aggregates each pair's
//!   co-occurrence statistics (CBS count, ARCS sum) so every edge weight is
//!   computed exactly once — the repeated-comparison elimination happens in
//!   the shuffle.
//! * **entity-based**: a second job re-keys weighted edges by endpoint so
//!   each reducer sees one node neighbourhood and applies the node-centric
//!   pruning criterion locally (here: CNP's top-k).
//!
//! Results are identical to the serial implementations in [`crate::prune`];
//! tests assert it and EXPERIMENTS.md E7 measures the speedup.

use crate::graph::BlockingGraph;
use crate::prune::{PrunedComparisons, WeightedPair};
use crate::weights::WeightingScheme;
use minoan_blocking::BlockCollection;
use minoan_common::stats::mean;
use minoan_common::{OrdF64, TopK};
use minoan_mapreduce::Engine;
use minoan_rdf::EntityId;

/// Edge statistics computed by the edge-based MapReduce job.
#[derive(Clone, Copy, Debug)]
struct EdgeStats {
    cbs: u32,
    arcs: f64,
}

/// Runs the edge-based weighting job: one weighted record per distinct
/// comparable pair, sorted by pair. Exactly the blocking-graph edges.
pub fn parallel_edge_weights(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    engine: &Engine,
) -> Vec<WeightedPair> {
    parallel_edge_weights_with_stats(collection, scheme, engine).0
}

/// As [`parallel_edge_weights`], also returning the job's execution
/// statistics (used by the scalability experiment E7).
pub fn parallel_edge_weights_with_stats(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    engine: &Engine,
) -> (Vec<WeightedPair>, minoan_mapreduce::JobStats) {
    // Per-entity stats are cheap and shared read-only with all tasks
    // (the paper's preprocessing job materialises the same information).
    let n = collection.num_entities();
    let blocks_of: Vec<u32> = (0..n as u32)
        .map(|e| collection.entity_blocks(EntityId(e)).len() as u32)
        .collect();
    let num_blocks = collection.len();

    let block_ids: Vec<u32> = (0..collection.len() as u32).collect();
    let result = engine.run(
        block_ids,
        |&bid, emit| {
            let b = collection.block(minoan_blocking::BlockId(bid));
            let card = (b.comparisons as f64).max(1.0);
            for (i, &x) in b.entities.iter().enumerate() {
                for &y in &b.entities[i + 1..] {
                    if collection.comparable(x, y) {
                        emit((x.min(y), x.max(y)), 1.0 / card);
                    }
                }
            }
        },
        |&(a, b), arcs_parts, out| {
            let stats = EdgeStats {
                cbs: arcs_parts.len() as u32,
                arcs: arcs_parts.iter().sum(),
            };
            out.push(((a, b), stats));
        },
    );

    let edges = result.output;
    // Degrees (|V_i|) need the distinct-edge view; derive from the job
    // output (this is [4]'s second preprocessing aggregate).
    let mut degree = vec![0u32; n];
    for &((a, b), _) in &edges {
        degree[a.index()] += 1;
        degree[b.index()] += 1;
    }
    let num_edges = edges.len();

    let pairs = edges
        .into_iter()
        .map(|((a, b), st)| {
            let weight =
                weight_from_stats(scheme, st, a, b, &blocks_of, &degree, num_blocks, num_edges);
            WeightedPair { a, b, weight }
        })
        .collect();
    (pairs, result.stats)
}

#[allow(clippy::too_many_arguments)]
fn weight_from_stats(
    scheme: WeightingScheme,
    st: EdgeStats,
    a: EntityId,
    b: EntityId,
    blocks_of: &[u32],
    degree: &[u32],
    num_blocks: usize,
    num_edges: usize,
) -> f64 {
    use minoan_common::stats::log_weight;
    let cbs = st.cbs as f64;
    match scheme {
        WeightingScheme::Cbs => cbs,
        WeightingScheme::Arcs => st.arcs,
        WeightingScheme::Js => {
            let denom = blocks_of[a.index()] as f64 + blocks_of[b.index()] as f64 - cbs;
            if denom <= 0.0 {
                0.0
            } else {
                cbs / denom
            }
        }
        WeightingScheme::Ecbs => {
            let nb = num_blocks as f64;
            cbs * log_weight(nb, blocks_of[a.index()] as f64)
                * log_weight(nb, blocks_of[b.index()] as f64)
        }
        WeightingScheme::Ejs => {
            let js = weight_from_stats(
                WeightingScheme::Js,
                st,
                a,
                b,
                blocks_of,
                degree,
                num_blocks,
                num_edges,
            );
            let v = num_edges as f64;
            js * log_weight(v, degree[a.index()] as f64) * log_weight(v, degree[b.index()] as f64)
        }
    }
}

/// Parallel WEP (edge-based strategy): weight job + global mean filter.
pub fn parallel_wep(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    engine: &Engine,
) -> PrunedComparisons {
    let weighted = parallel_edge_weights(collection, scheme, engine);
    let input_edges = weighted.len();
    let ws: Vec<f64> = weighted.iter().map(|p| p.weight).collect();
    let threshold = mean(&ws);
    let kept: Vec<WeightedPair> = weighted
        .into_iter()
        .filter(|p| p.weight >= threshold && p.weight > 0.0)
        .collect();
    PrunedComparisons::from_weighted_pairs(kept, scheme, input_edges)
}

/// Parallel CNP (entity-based strategy): weight job, then a per-node top-k
/// job keyed by endpoint; `reciprocal` intersects the two endpoint votes.
pub fn parallel_cnp(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    reciprocal: bool,
    k: Option<usize>,
    engine: &Engine,
) -> PrunedComparisons {
    let weighted = parallel_edge_weights(collection, scheme, engine);
    let input_edges = weighted.len();
    let active = {
        let mut seen = vec![false; collection.num_entities()];
        for p in &weighted {
            seen[p.a.index()] = true;
            seen[p.b.index()] = true;
        }
        seen.iter().filter(|&&s| s).count().max(1)
    };
    let k = k.unwrap_or_else(|| ((collection.total_assignments() as usize) / active).max(1));

    // Entity-based job: each reducer owns one node neighbourhood.
    let result = engine.run(
        weighted,
        |p, emit| {
            emit(p.a, (p.b, p.weight));
            emit(p.b, (p.a, p.weight));
        },
        |&node, neigh, out| {
            let mut top: TopK<(OrdF64, std::cmp::Reverse<EntityId>)> = TopK::new(k);
            for &(other, w) in neigh.iter() {
                if w > 0.0 {
                    top.push((OrdF64(w), std::cmp::Reverse(other)));
                }
            }
            for (w, r) in top.into_sorted_vec() {
                let other = r.0;
                out.push(((node.min(other), node.max(other)), w.0));
            }
        },
    );

    // Vote counting (union vs reciprocal) — a trivial final aggregate.
    let mut votes: minoan_common::FxHashMap<(EntityId, EntityId), (u8, f64)> =
        minoan_common::FxHashMap::default();
    for ((a, b), w) in result.output {
        let e = votes.entry((a, b)).or_insert((0, w));
        e.0 += 1;
    }
    let need = if reciprocal { 2 } else { 1 };
    let kept: Vec<WeightedPair> = votes
        .into_iter()
        .filter(|(_, (v, _))| *v >= need)
        .map(|((a, b), (_, w))| WeightedPair { a, b, weight: w })
        .collect();
    PrunedComparisons::from_weighted_pairs(kept, scheme, input_edges)
}

/// Convenience check used by tests and the harness: the serial graph built
/// from the same collection.
pub fn serial_graph(collection: &BlockCollection) -> BlockingGraph {
    BlockingGraph::build(collection)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prune;
    use minoan_blocking::builders::token_blocking;
    use minoan_blocking::ErMode;
    use minoan_datagen::{generate, profiles};

    fn pair_set(p: &PrunedComparisons) -> std::collections::BTreeSet<(u32, u32)> {
        p.pairs.iter().map(|p| (p.a.0, p.b.0)).collect()
    }

    #[test]
    fn parallel_weights_match_serial_graph() {
        let g = generate(&profiles::center_dense(120, 4));
        let blocks = token_blocking(&g.dataset, ErMode::CleanClean);
        let graph = BlockingGraph::build(&blocks);
        for scheme in WeightingScheme::ALL {
            let par = parallel_edge_weights(&blocks, scheme, &Engine::new(4));
            assert_eq!(par.len(), graph.num_edges(), "{scheme:?}");
            // Align by construction: job output is sorted by pair key.
            for (wp, edge) in par.iter().zip(graph.edges()) {
                assert_eq!((wp.a, wp.b), (edge.a, edge.b));
                let serial_w = scheme.weight(&graph, edge);
                assert!(
                    (wp.weight - serial_w).abs() < 1e-9,
                    "{scheme:?}: {} vs {serial_w}",
                    wp.weight
                );
            }
        }
    }

    #[test]
    fn parallel_wep_equals_serial_wep() {
        let g = generate(&profiles::center_dense(100, 9));
        let blocks = token_blocking(&g.dataset, ErMode::CleanClean);
        let graph = BlockingGraph::build(&blocks);
        for workers in [1, 4] {
            let par = parallel_wep(&blocks, WeightingScheme::Ecbs, &Engine::new(workers));
            let ser = prune::wep(&graph, WeightingScheme::Ecbs);
            assert_eq!(pair_set(&par), pair_set(&ser));
        }
    }

    #[test]
    fn parallel_cnp_equals_serial_cnp() {
        let g = generate(&profiles::center_dense(100, 2));
        let blocks = token_blocking(&g.dataset, ErMode::CleanClean);
        let graph = BlockingGraph::build(&blocks);
        for reciprocal in [false, true] {
            let par = parallel_cnp(
                &blocks,
                WeightingScheme::Js,
                reciprocal,
                Some(3),
                &Engine::new(3),
            );
            let ser = prune::cnp(&graph, WeightingScheme::Js, reciprocal, Some(3));
            assert_eq!(pair_set(&par), pair_set(&ser), "reciprocal={reciprocal}");
        }
    }

    #[test]
    fn worker_count_invariance() {
        let g = generate(&profiles::periphery_sparse(80, 5));
        let blocks = token_blocking(&g.dataset, ErMode::CleanClean);
        let one = parallel_wep(&blocks, WeightingScheme::Arcs, &Engine::new(1));
        let many = parallel_wep(&blocks, WeightingScheme::Arcs, &Engine::new(8));
        assert_eq!(pair_set(&one), pair_set(&many));
    }
}
