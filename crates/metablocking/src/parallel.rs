//! Parallel meta-blocking on the MapReduce substrate (reference \[4\]).
//!
//! Both of the paper's strategies are reproduced, and they differ in what
//! gets shuffled:
//!
//! * **edge-based** ([`parallel_edge_weights`], [`parallel_wep`],
//!   [`parallel_cnp`]): map over *blocks* emitting one record per
//!   comparison occurrence keyed by the pair; the reducer aggregates each
//!   pair's co-occurrence statistics (CBS count, ARCS sum) so every edge
//!   weight is computed exactly once — the repeated-comparison
//!   elimination happens in the shuffle. Shuffle volume:
//!   `Σ_b ‖b‖` records — one per pair *occurrence*, which on token
//!   blocking is typically an order of magnitude above the distinct-edge
//!   count `|V|`.
//! * **entity-based** ([`wnp`], [`cnp`], [`wep`], [`cep`], [`blast`],
//!   [`weighted_edges`]): map over contiguous *entity ranges*, run the
//!   node-centric sweep kernel locally (the same epoch-reset
//!   `SweepScratch` the streaming backend uses) to rebuild each node's
//!   weighted neighbourhood, and emit **at most one record per entity
//!   neighbourhood** keyed by the entity; the reducer applies the pruning
//!   criterion to the neighbourhood it owns. Where the criterion permits,
//!   the fold happens map-side and the shuffled record shrinks further:
//!   WEP's sum job ships one scalar per entity, CEP one bounded top-k per
//!   map split. Shuffle volume: at most `|E|` records (entities with ≥ 1
//!   neighbour) for the weighting job plus at most `2·|kept|` tiny
//!   records for the node-centric vote job — per-occurrence shuffling
//!   never happens, which is exactly why the paper prefers this strategy
//!   at scale.
//!
//! Every weight is computed through the shared
//! [`kernel::weight_from_stats`] body and every global criterion through
//! the same deterministic reductions as the other backends (WEP's
//! fixed-shape pairwise mean over positive weights, the strict
//! `(weight, Reverse(pair))` top-k total order), so results are
//! **bit-identical** to both the
//! materialised and streaming backends at *any* worker count —
//! `tests/parallel_consistency.rs` asserts the full scheme × family ×
//! worker matrix, and each job returns its [`JobStats`] (via
//! [`JobReport`]) so the shuffle-volume gap between the two strategies is
//! measurable (`BENCH_metablocking.json` records it).

use crate::kernel::{self, WeightGlobals};
use crate::prune::{self, PrunedComparisons, WeightedPair};
use crate::sweep::{entity_sweep_ranges, SweepScratch};
use crate::weights::WeightingScheme;
use minoan_blocking::BlockCollection;
use minoan_common::stats::mean;
use minoan_common::{OrdF64, TopK};
use minoan_mapreduce::{Engine, JobStats};
use minoan_rdf::EntityId;
use std::cmp::Reverse;

/// Counter name: forward (`a < b`) edges seen by the weighting job — the
/// distinct-edge count `|V|` when no counting job ran.
const FWD_EDGES: &str = "forward_edges";

/// Per-job execution statistics of one meta-blocking MapReduce run
/// (a run is one to three chained jobs: optional counting, weighting +
/// local criterion, optional vote combination).
#[derive(Clone, Debug, Default)]
pub struct JobReport {
    /// `(job label, stats)` in execution order.
    pub jobs: Vec<(&'static str, JobStats)>,
}

impl JobReport {
    fn push(&mut self, label: &'static str, stats: JobStats) {
        self.jobs.push((label, stats));
    }

    /// Total shuffled records across all jobs — the strategy's
    /// intermediate-pair volume (one record per pair occurrence for the
    /// edge-based jobs, at most one per entity neighbourhood for the
    /// entity-based ones).
    pub fn shuffled_records(&self) -> usize {
        self.jobs.iter().map(|(_, s)| s.intermediate_pairs).sum()
    }

    /// Total measured wall time across all jobs, nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.jobs.iter().map(|(_, s)| s.total_nanos()).sum()
    }

    /// Modeled makespan on `workers` parallel workers: the chained jobs'
    /// [`JobStats::modeled_nanos`] summed (jobs are barriers).
    pub fn modeled_nanos(&self, workers: usize) -> u64 {
        self.jobs
            .iter()
            .map(|(_, s)| s.modeled_nanos(workers))
            .sum()
    }
}

/// Contiguous-range partitioner for entity keys: reducer `p` owns the
/// `p`-th slice of the id space, mirroring the range partitioner the
/// paper's entity-based jobs use (locality of the per-node state).
fn entity_partitioner(n: usize) -> impl Fn(&u32, usize) -> usize + Sync {
    let n = n.max(1);
    move |&a: &u32, parts: usize| (a as usize * parts) / n
}

/// Range partitioner for pair keys, by smaller endpoint.
fn pair_partitioner(n: usize) -> impl Fn(&(EntityId, EntityId), usize) -> usize + Sync {
    let n = n.max(1);
    move |k: &(EntityId, EntityId), parts: usize| (k.0.index() * parts) / n
}

/// Map-input splits: cost-balanced contiguous entity ranges, a few per
/// worker so the engine's greedy scheduler can smooth skew.
fn map_splits(collection: &BlockCollection, engine: &Engine) -> Vec<std::ops::Range<usize>> {
    entity_sweep_ranges(collection, engine.workers() * 4)
}

/// Runs the preprocessing (counting) job when `scheme` or the caller
/// needs degree/|V|/active-node aggregates: one entity-partitioned job
/// shuffling one `(entity, degree)` record per active entity.
fn mapreduce_globals(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    need_counts: bool,
    engine: &Engine,
    report: &mut JobReport,
) -> WeightGlobals {
    if scheme != WeightingScheme::Ejs && !need_counts {
        return WeightGlobals::basic(collection);
    }
    let n = collection.num_entities();
    let result = engine.run_partitioned(
        map_splits(collection, engine),
        entity_partitioner(n),
        |range, emit, _c| {
            let mut scratch = SweepScratch::new(n);
            for a in range.clone() {
                scratch.sweep(collection, EntityId(a as u32));
                let d = scratch.neighbours().len() as u32;
                if d > 0 {
                    emit(a as u32, d);
                }
            }
        },
        |&a, degs, out, _c| out.push((a, degs[0])),
    );
    report.push("count", result.stats);
    let mut degrees = vec![0u32; n];
    for &(a, d) in &result.output {
        degrees[a as usize] = d;
    }
    let num_edges = degrees.iter().map(|&d| d as u64).sum::<u64>() as usize / 2;
    let active_nodes = result.output.len();
    WeightGlobals {
        blocks_of: kernel::blocks_of(collection),
        num_blocks: collection.len(),
        degrees,
        num_edges,
        active_nodes,
    }
}

/// The entity-partitioned weighting job shared by every entity-based
/// pruner: map over entity ranges, sweep each entity with the shared
/// kernel, and emit its weighted neighbourhood — `(neighbour, weight)`
/// in ascending neighbour order, forward (`y > a`) edges only when
/// `forward_only` — as **one record keyed by the entity**; `reduce`
/// applies the pruning criterion to the neighbourhood it owns. Returns
/// the reduce output (ordered by entity key), the forward-edge count and
/// the job stats.
fn neighbourhood_job<O, R>(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    globals: &WeightGlobals,
    forward_only: bool,
    engine: &Engine,
    reduce: R,
) -> (Vec<O>, u64, JobStats)
where
    O: Send,
    R: Fn(u32, &[(u32, f64)], &mut Vec<O>) + Sync,
{
    let n = collection.num_entities();
    let result = engine.run_partitioned(
        map_splits(collection, engine),
        entity_partitioner(n),
        |range, emit, c| {
            let mut scratch = SweepScratch::new(n);
            let mut weights: Vec<f64> = Vec::new();
            for a in range.clone() {
                let a = a as u32;
                scratch.sweep(collection, EntityId(a));
                if scratch.neighbours().is_empty() {
                    continue;
                }
                let record: Vec<(u32, f64)> = if forward_only {
                    scratch
                        .neighbours()
                        .iter()
                        .filter(|&&y| y > a)
                        .map(|&y| (y, kernel::forward_weight(scheme, &scratch, a, y, globals)))
                        .collect()
                } else {
                    kernel::neighbour_weights(scheme, &scratch, a, globals, &mut weights);
                    scratch
                        .neighbours()
                        .iter()
                        .copied()
                        .zip(weights.iter().copied())
                        .collect()
                };
                let fwd = if forward_only {
                    record.len() as u64
                } else {
                    record.iter().filter(|&&(y, _)| y > a).count() as u64
                };
                c.add(FWD_EDGES, fwd);
                if !record.is_empty() {
                    emit(a, record);
                }
            }
        },
        |&a, neighbourhoods, out, _c| {
            // Exactly one neighbourhood record arrives per entity key.
            for neigh in neighbourhoods.iter() {
                reduce(a, neigh, out);
            }
        },
    );
    let fwd = result.counters.get(FWD_EDGES);
    (result.output, fwd, result.stats)
}

/// The vote-combination job of the node-centric pruners: re-key each
/// locally-kept pair by the pair itself and keep it when enough endpoints
/// voted for it (1 under union, 2 under reciprocal semantics). Output is
/// ordered by pair, so the result is deterministic at any worker count.
fn vote_job(
    kept: Vec<WeightedPair>,
    reciprocal: bool,
    n: usize,
    engine: &Engine,
) -> (Vec<WeightedPair>, JobStats) {
    let need = if reciprocal { 2 } else { 1 };
    let result = engine.run_partitioned(
        kept,
        pair_partitioner(n),
        |p, emit, _c| emit((p.a, p.b), p.weight),
        move |&(a, b), ws, out, _c| {
            if ws.len() >= need {
                // Both endpoints computed the weight through the kernel in
                // normalised endpoint order, so the votes carry identical
                // bits; the first is as good as any.
                out.push(WeightedPair {
                    a,
                    b,
                    weight: ws[0],
                });
            }
        },
    );
    (result.output, result.stats)
}

fn input_edges_of(globals: &WeightGlobals, fwd: u64) -> usize {
    if globals.num_edges > 0 {
        globals.num_edges
    } else {
        fwd as usize
    }
}

/// Entity-based Weighted Node Pruning — bit-identical to
/// [`prune::wnp`] / [`crate::streaming::wnp`] at any worker count.
pub fn wnp(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    reciprocal: bool,
    engine: &Engine,
) -> PrunedComparisons {
    wnp_with_report(collection, scheme, reciprocal, engine).0
}

/// [`wnp`], also returning the per-job execution statistics.
pub fn wnp_with_report(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    reciprocal: bool,
    engine: &Engine,
) -> (PrunedComparisons, JobReport) {
    let mut report = JobReport::default();
    let globals = mapreduce_globals(collection, scheme, false, engine, &mut report);
    let (kept, fwd, stats) = neighbourhood_job(
        collection,
        scheme,
        &globals,
        false,
        engine,
        |a, neigh, out| {
            let ws: Vec<f64> = neigh.iter().map(|&(_, w)| w).collect();
            let threshold = mean(&ws);
            for &(y, w) in neigh {
                if w >= threshold && w > 0.0 {
                    out.push(kernel::normalised(a, y, w));
                }
            }
        },
    );
    report.push("wnp/neighbourhoods", stats);
    let (pairs, vstats) = vote_job(kept, reciprocal, collection.num_entities(), engine);
    report.push("wnp/votes", vstats);
    let out = PrunedComparisons::from_weighted_pairs(pairs, scheme, input_edges_of(&globals, fwd));
    (out, report)
}

/// Entity-based Cardinality Node Pruning — bit-identical to
/// [`prune::cnp`] / [`crate::streaming::cnp`] at any worker count.
pub fn cnp(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    reciprocal: bool,
    k: Option<usize>,
    engine: &Engine,
) -> PrunedComparisons {
    cnp_with_report(collection, scheme, reciprocal, k, engine).0
}

/// [`cnp`], also returning the per-job execution statistics.
pub fn cnp_with_report(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    reciprocal: bool,
    k: Option<usize>,
    engine: &Engine,
) -> (PrunedComparisons, JobReport) {
    let mut report = JobReport::default();
    // The default k needs the active-node count, which needs the counting
    // job anyway; EJS needs one for degrees.
    let globals = mapreduce_globals(collection, scheme, k.is_none(), engine, &mut report);
    let k = k.unwrap_or_else(|| {
        prune::default_cnp_k_from(collection.total_assignments(), globals.active_nodes)
    });
    if k == 0 {
        // Explicit zero cardinality: mirror `prune::cnp`'s guard, still
        // reporting the input-edge count.
        let globals = if globals.degrees.is_empty() {
            mapreduce_globals(collection, scheme, true, engine, &mut report)
        } else {
            globals
        };
        return (PrunedComparisons::empty(scheme, globals.num_edges), report);
    }
    let (kept, fwd, stats) = neighbourhood_job(
        collection,
        scheme,
        &globals,
        false,
        engine,
        |a, neigh, out| {
            // Same selector the other backends use; tie-breaking by
            // normalised pair is order-isomorphic to the edge index.
            let mut top: TopK<(OrdF64, Reverse<(EntityId, EntityId)>)> = TopK::new(k);
            for &(y, w) in neigh {
                if w > 0.0 {
                    let p = kernel::normalised(a, y, w);
                    top.push((OrdF64(w), Reverse((p.a, p.b))));
                }
            }
            for (w, r) in top.into_sorted_vec() {
                out.push(WeightedPair {
                    a: r.0 .0,
                    b: r.0 .1,
                    weight: w.0,
                });
            }
        },
    );
    report.push("cnp/neighbourhoods", stats);
    let (pairs, vstats) = vote_job(kept, reciprocal, collection.num_entities(), engine);
    report.push("cnp/votes", vstats);
    let out = PrunedComparisons::from_weighted_pairs(pairs, scheme, input_edges_of(&globals, fwd));
    (out, report)
}

/// Entity-based Weighted Edge Pruning — bit-identical to
/// [`prune::wep`] / [`crate::streaming::wep`] at any worker count.
///
/// Two chained jobs: job 1 folds each entity's neighbourhood map-side
/// into its positive forward-weight sum (one *scalar* record per entity
/// in the shuffle); the global threshold comes from the same
/// fixed-length-slab pairwise mean as the other backends
/// (`prune::wep_threshold_from_sums`), so it is independent of the
/// partitioning. Job 2 re-sweeps and keeps the edges at or above the
/// threshold.
pub fn wep(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    engine: &Engine,
) -> PrunedComparisons {
    wep_with_report(collection, scheme, engine).0
}

/// [`wep`], also returning the per-job execution statistics.
pub fn wep_with_report(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    engine: &Engine,
) -> (PrunedComparisons, JobReport) {
    let mut report = JobReport::default();
    let globals = mapreduce_globals(collection, scheme, false, engine, &mut report);
    let n = collection.num_entities();

    // Job 1 — per-entity partial sums of positive forward-edge weights,
    // accumulated map-side in ascending neighbour order (the slab order),
    // so the shuffle carries one scalar per entity, never an edge list.
    let result = {
        let globals = &globals;
        engine.run_partitioned(
            map_splits(collection, engine),
            entity_partitioner(n),
            |range, emit, c| {
                let mut scratch = SweepScratch::new(n);
                for a in range.clone() {
                    let a = a as u32;
                    scratch.sweep(collection, EntityId(a));
                    let (mut sum, mut pos, mut fwd) = (0.0f64, 0u64, 0u64);
                    for &y in scratch.neighbours() {
                        if y <= a {
                            continue;
                        }
                        fwd += 1;
                        let w = kernel::forward_weight(scheme, &scratch, a, y, globals);
                        if w > 0.0 {
                            sum += w;
                            pos += 1;
                        }
                    }
                    c.add(FWD_EDGES, fwd);
                    if pos > 0 {
                        emit(a, (sum, pos));
                    }
                }
            },
            |&a, partials, out, _c| out.push((a, partials[0])),
        )
    };
    let fwd = result.counters.get(FWD_EDGES);
    report.push("wep/partial-sums", result.stats);
    let mut sums = vec![0.0f64; n];
    let mut positive = 0u64;
    for &(a, (sum, pos)) in &result.output {
        sums[a as usize] = sum;
        positive += pos;
    }
    let threshold = prune::wep_threshold_from_sums(&sums, positive);

    // Job 2 — re-sweep and keep each edge once, at its smaller endpoint.
    let (kept, _, s2) = neighbourhood_job(
        collection,
        scheme,
        &globals,
        true,
        engine,
        move |a, neigh, out| {
            for &(y, w) in neigh {
                if w >= threshold && w > 0.0 {
                    out.push(WeightedPair {
                        a: EntityId(a),
                        b: EntityId(y),
                        weight: w,
                    });
                }
            }
        },
    );
    report.push("wep/filter", s2);
    let out = PrunedComparisons::from_weighted_pairs(kept, scheme, input_edges_of(&globals, fwd));
    (out, report)
}

/// Key of the CEP selection order: weight descending, ties to the
/// *earlier* pair — identical to the other backends' total order.
type CepKey = (OrdF64, Reverse<(EntityId, EntityId)>);

/// Entity-based Cardinality Edge Pruning — bit-identical to
/// [`prune::cep`] / [`crate::streaming::cep`] at any worker count.
///
/// Each map split folds the forward edges of its whole entity range into
/// one bounded top-k heap (mirroring the streaming backend's per-thread
/// heaps) and ships a single record; the single reducer merges the local
/// winners under the strict `(weight, Reverse(pair))` total order, which
/// makes the merged set the exact global top-k for any partitioning.
pub fn cep(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    k: Option<usize>,
    engine: &Engine,
) -> PrunedComparisons {
    cep_with_report(collection, scheme, k, engine).0
}

/// [`cep`], also returning the per-job execution statistics.
pub fn cep_with_report(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    k: Option<usize>,
    engine: &Engine,
) -> (PrunedComparisons, JobReport) {
    let mut report = JobReport::default();
    let k = k.unwrap_or_else(|| prune::default_cep_k_from(collection.total_assignments()));
    if k == 0 {
        // Degenerate cardinality (empty or single-assignment collection):
        // count the edges for the stats, keep nothing.
        let globals = mapreduce_globals(collection, scheme, true, engine, &mut report);
        return (PrunedComparisons::empty(scheme, globals.num_edges), report);
    }
    let globals = mapreduce_globals(collection, scheme, false, engine, &mut report);
    let n = collection.num_entities();
    let result = engine.run_partitioned(
        map_splits(collection, engine),
        |_k: &u8, _parts| 0,
        |range, emit, c| {
            let mut scratch = SweepScratch::new(n);
            let mut top: TopK<CepKey> = TopK::new(k);
            let mut fwd = 0u64;
            for a in range.clone() {
                let a = a as u32;
                scratch.sweep(collection, EntityId(a));
                for &y in scratch.neighbours() {
                    if y <= a {
                        continue;
                    }
                    fwd += 1;
                    let w = kernel::forward_weight(scheme, &scratch, a, y, &globals);
                    if w > 0.0 {
                        top.push((OrdF64(w), Reverse((EntityId(a), EntityId(y)))));
                    }
                }
            }
            c.add(FWD_EDGES, fwd);
            let local = top.into_sorted_vec();
            if !local.is_empty() {
                emit(0u8, local);
            }
        },
        |_key, locals, out, _c| {
            let mut merged: TopK<CepKey> = TopK::new(k);
            for local in locals.iter() {
                for &item in local {
                    merged.push(item);
                }
            }
            for (w, r) in merged.into_sorted_vec() {
                out.push(WeightedPair {
                    a: r.0 .0,
                    b: r.0 .1,
                    weight: w.0,
                });
            }
        },
    );
    let fwd = result.counters.get(FWD_EDGES);
    report.push("cep/local-topk", result.stats);
    let out = PrunedComparisons::from_weighted_pairs(
        result.output,
        scheme,
        input_edges_of(&globals, fwd),
    );
    (out, report)
}

/// Entity-based BLAST — bit-identical to [`crate::blast::blast`] /
/// [`crate::streaming::blast`] at any worker count. Job 1 reduces each
/// neighbourhood to its local χ² maximum; job 2 keeps the edges that
/// reach `ratio` of either endpoint's maximum.
///
/// # Panics
/// Panics unless `0 < ratio ≤ 1`.
pub fn blast(collection: &BlockCollection, ratio: f64, engine: &Engine) -> PrunedComparisons {
    blast_with_report(collection, ratio, engine).0
}

/// [`blast`], also returning the per-job execution statistics.
pub fn blast_with_report(
    collection: &BlockCollection,
    ratio: f64,
    engine: &Engine,
) -> (PrunedComparisons, JobReport) {
    assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0, 1]");
    let mut report = JobReport::default();
    let n = collection.num_entities();
    let blocks = kernel::blocks_of(collection);
    let num_blocks = collection.len();
    let chi = |scratch: &SweepScratch, a: u32, y: u32| {
        let (lo, hi) = if a < y { (a, y) } else { (y, a) };
        crate::blast::chi_square_from_stats(
            scratch.cbs_of(y),
            blocks[lo as usize],
            blocks[hi as usize],
            num_blocks,
        )
    };

    // Job 1: per-node local χ² maxima.
    let result = engine.run_partitioned(
        map_splits(collection, engine),
        entity_partitioner(n),
        |range, emit, _c| {
            let mut scratch = SweepScratch::new(n);
            for a in range.clone() {
                let a = a as u32;
                scratch.sweep(collection, EntityId(a));
                if scratch.neighbours().is_empty() {
                    continue;
                }
                let mut max = 0.0f64;
                for &y in scratch.neighbours() {
                    let w = chi(&scratch, a, y);
                    if w > max {
                        max = w;
                    }
                }
                emit(a, max);
            }
        },
        |&a, maxima, out, _c| out.push((a, maxima[0])),
    );
    report.push("blast/local-maxima", result.stats);
    let mut local_max = vec![0.0f64; n];
    for &(a, m) in &result.output {
        local_max[a as usize] = m;
    }

    // Job 2: keep each forward edge if either endpoint would keep it.
    let local_max = &local_max;
    let result = engine.run_partitioned(
        map_splits(collection, engine),
        entity_partitioner(n),
        |range, emit, c| {
            let mut scratch = SweepScratch::new(n);
            for a in range.clone() {
                let a = a as u32;
                scratch.sweep(collection, EntityId(a));
                let record: Vec<(u32, f64)> = scratch
                    .neighbours()
                    .iter()
                    .filter(|&&y| y > a)
                    .map(|&y| (y, chi(&scratch, a, y)))
                    .collect();
                c.add(FWD_EDGES, record.len() as u64);
                if !record.is_empty() {
                    emit(a, record);
                }
            }
        },
        move |&a, neighbourhoods, out, _c| {
            for neigh in neighbourhoods.iter() {
                for &(y, w) in neigh {
                    if w > 0.0
                        && (w >= ratio * local_max[a as usize]
                            || w >= ratio * local_max[y as usize])
                    {
                        out.push(WeightedPair {
                            a: EntityId(a),
                            b: EntityId(y),
                            weight: w,
                        });
                    }
                }
            }
        },
    );
    let fwd = result.counters.get(FWD_EDGES);
    report.push("blast/filter", result.stats);
    // BLAST reports the χ² values under the CBS label, matching the
    // other implementations.
    let out =
        PrunedComparisons::from_weighted_pairs(result.output, WeightingScheme::Cbs, fwd as usize);
    (out, report)
}

/// Every distinct comparable pair with its weight, sorted by pair — the
/// entity-based equivalent of enumerating the blocking graph's edges
/// (the unpruned path), one shuffled record per entity neighbourhood.
pub fn weighted_edges(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    engine: &Engine,
) -> Vec<WeightedPair> {
    weighted_edges_with_report(collection, scheme, engine).0
}

/// [`weighted_edges`], also returning the per-job execution statistics.
pub fn weighted_edges_with_report(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    engine: &Engine,
) -> (Vec<WeightedPair>, JobReport) {
    let mut report = JobReport::default();
    let globals = mapreduce_globals(collection, scheme, false, engine, &mut report);
    let (pairs, _, stats) = neighbourhood_job(
        collection,
        scheme,
        &globals,
        true,
        engine,
        |a, neigh, out| {
            for &(y, w) in neigh {
                out.push(WeightedPair {
                    a: EntityId(a),
                    b: EntityId(y),
                    weight: w,
                });
            }
        },
    );
    report.push("weighted-edges", stats);
    (pairs, report)
}

// ---------------------------------------------------------------------------
// Edge-based strategy (the shuffle-heavy baseline).
// ---------------------------------------------------------------------------

/// Edge statistics computed by the edge-based MapReduce job.
#[derive(Clone, Copy, Debug)]
struct EdgeStats {
    cbs: u32,
    arcs: f64,
}

/// Runs the edge-based weighting job: one weighted record per distinct
/// comparable pair, sorted by pair. Exactly the blocking-graph edges.
pub fn parallel_edge_weights(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    engine: &Engine,
) -> Vec<WeightedPair> {
    parallel_edge_weights_with_stats(collection, scheme, engine).0
}

/// As [`parallel_edge_weights`], also returning the job's execution
/// statistics — its `intermediate_pairs` is the per-occurrence shuffle
/// volume the entity-based strategy avoids.
pub fn parallel_edge_weights_with_stats(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    engine: &Engine,
) -> (Vec<WeightedPair>, JobStats) {
    // Per-entity stats are cheap and shared read-only with all tasks
    // (the paper's preprocessing job materialises the same information).
    let n = collection.num_entities();
    let blocks_of = kernel::blocks_of(collection);
    let num_blocks = collection.len();

    let block_ids: Vec<u32> = (0..collection.len() as u32).collect();
    let result = engine.run(
        block_ids,
        |&bid, emit| {
            let b = collection.block(minoan_blocking::BlockId(bid));
            let card = (b.comparisons as f64).max(1.0);
            for (i, &x) in b.entities.iter().enumerate() {
                for &y in &b.entities[i + 1..] {
                    if collection.comparable(x, y) {
                        emit((x.min(y), x.max(y)), 1.0 / card);
                    }
                }
            }
        },
        |&(a, b), arcs_parts, out| {
            let stats = EdgeStats {
                cbs: arcs_parts.len() as u32,
                arcs: arcs_parts.iter().sum(),
            };
            out.push(((a, b), stats));
        },
    );

    let edges = result.output;
    // Degrees (|V_i|) need the distinct-edge view; derive from the job
    // output (this is [4]'s second preprocessing aggregate).
    let mut degree = vec![0u32; n];
    for &((a, b), _) in &edges {
        degree[a.index()] += 1;
        degree[b.index()] += 1;
    }
    let num_edges = edges.len();

    let pairs = edges
        .into_iter()
        .map(|((a, b), st)| {
            let weight = kernel::weight_from_stats(
                scheme,
                st.cbs,
                st.arcs,
                blocks_of[a.index()],
                blocks_of[b.index()],
                num_blocks,
                degree[a.index()] as usize,
                degree[b.index()] as usize,
                num_edges,
            );
            WeightedPair { a, b, weight }
        })
        .collect();
    (pairs, result.stats)
}

/// Parallel WEP (edge-based strategy): weight job + global mean filter.
/// The threshold is the shared positive-weight-only mean
/// (`prune::wep_threshold_from_sums`), so the result is bit-identical
/// to [`prune::wep`] even on ECBS/EJS inputs with zero-weight edges.
pub fn parallel_wep(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    engine: &Engine,
) -> PrunedComparisons {
    let weighted = parallel_edge_weights(collection, scheme, engine);
    let input_edges = weighted.len();
    // The job output is sorted by pair, so accumulating per smaller
    // endpoint walks the exact slab order the other backends sum in.
    let mut sums = vec![0.0f64; collection.num_entities()];
    let mut positive = 0u64;
    for p in &weighted {
        if p.weight > 0.0 {
            sums[p.a.index()] += p.weight;
            positive += 1;
        }
    }
    let threshold = prune::wep_threshold_from_sums(&sums, positive);
    let kept: Vec<WeightedPair> = weighted
        .into_iter()
        .filter(|p| p.weight >= threshold && p.weight > 0.0)
        .collect();
    PrunedComparisons::from_weighted_pairs(kept, scheme, input_edges)
}

/// Parallel CNP (edge-based strategy): weight job, then a per-node top-k
/// job keyed by endpoint; `reciprocal` intersects the two endpoint votes.
/// Vote combination runs over the pair-sorted kept list (no hash-map
/// iteration order anywhere), so the output ordering is deterministic.
pub fn parallel_cnp(
    collection: &BlockCollection,
    scheme: WeightingScheme,
    reciprocal: bool,
    k: Option<usize>,
    engine: &Engine,
) -> PrunedComparisons {
    let weighted = parallel_edge_weights(collection, scheme, engine);
    let input_edges = weighted.len();
    let active = {
        let mut seen = vec![false; collection.num_entities()];
        for p in &weighted {
            seen[p.a.index()] = true;
            seen[p.b.index()] = true;
        }
        seen.iter().filter(|&&s| s).count().max(1)
    };
    let k = k.unwrap_or_else(|| prune::default_cnp_k_from(collection.total_assignments(), active));

    // Entity-based second job: each reducer owns one node neighbourhood.
    let result = engine.run(
        weighted,
        |p, emit| {
            emit(p.a, (p.b, p.weight));
            emit(p.b, (p.a, p.weight));
        },
        |&node, neigh, out| {
            let mut top: TopK<(OrdF64, Reverse<(EntityId, EntityId)>)> = TopK::new(k);
            for &(other, w) in neigh.iter() {
                if w > 0.0 {
                    let (lo, hi) = (node.min(other), node.max(other));
                    top.push((OrdF64(w), Reverse((lo, hi))));
                }
            }
            for (w, r) in top.into_sorted_vec() {
                out.push(WeightedPair {
                    a: r.0 .0,
                    b: r.0 .1,
                    weight: w.0,
                });
            }
        },
    );

    // Vote counting (union vs reciprocal) over the pair-sorted kept list.
    let mut kept = result.output;
    kept.sort_unstable_by_key(|p| (p.a, p.b));
    let kept = kernel::combine_votes(kept, reciprocal);
    PrunedComparisons::from_weighted_pairs(kept, scheme, input_edges)
}

/// Convenience check used by tests and the harness: the serial graph built
/// from the same collection.
pub fn serial_graph(collection: &BlockCollection) -> crate::graph::BlockingGraph {
    crate::graph::BlockingGraph::build(collection)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::BlockingGraph;
    use crate::{blast as blast_mod, streaming};
    use minoan_blocking::builders::token_blocking;
    use minoan_blocking::ErMode;
    use minoan_datagen::{generate, profiles};

    use crate::assert_bit_identical;

    fn pair_set(p: &PrunedComparisons) -> std::collections::BTreeSet<(u32, u32)> {
        p.pairs.iter().map(|p| (p.a.0, p.b.0)).collect()
    }

    #[test]
    fn parallel_weights_match_serial_graph() {
        let g = generate(&profiles::center_dense(120, 4));
        let blocks = token_blocking(&g.dataset, ErMode::CleanClean);
        let graph = BlockingGraph::build(&blocks);
        for scheme in WeightingScheme::ALL {
            let par = parallel_edge_weights(&blocks, scheme, &Engine::new(4));
            assert_eq!(par.len(), graph.num_edges(), "{scheme:?}");
            // Align by construction: job output is sorted by pair key.
            for (wp, edge) in par.iter().zip(graph.edges()) {
                assert_eq!((wp.a, wp.b), (edge.a, edge.b));
                let serial_w = scheme.weight(&graph, edge);
                assert_eq!(
                    wp.weight.to_bits(),
                    serial_w.to_bits(),
                    "{scheme:?}: {} vs {serial_w}",
                    wp.weight
                );
            }
        }
    }

    #[test]
    fn entity_based_weighted_edges_match_the_slab() {
        let g = generate(&profiles::center_dense(110, 6));
        let blocks = token_blocking(&g.dataset, ErMode::CleanClean);
        let graph = BlockingGraph::build(&blocks);
        for scheme in [WeightingScheme::Arcs, WeightingScheme::Ejs] {
            let par = weighted_edges(&blocks, scheme, &Engine::new(3));
            assert_eq!(par.len(), graph.num_edges(), "{scheme:?}");
            for (wp, edge) in par.iter().zip(graph.edges()) {
                assert_eq!((wp.a, wp.b), (edge.a, edge.b));
                assert_eq!(wp.weight.to_bits(), scheme.weight(&graph, edge).to_bits());
            }
        }
    }

    #[test]
    fn parallel_wep_bit_identical_to_serial_wep() {
        let g = generate(&profiles::center_dense(100, 9));
        let blocks = token_blocking(&g.dataset, ErMode::CleanClean);
        let graph = BlockingGraph::build(&blocks);
        for scheme in [WeightingScheme::Ecbs, WeightingScheme::Ejs] {
            let ser = prune::wep(&graph, scheme);
            for workers in [1, 4] {
                let par = parallel_wep(&blocks, scheme, &Engine::new(workers));
                assert_bit_identical(&par, &ser, &format!("edge-based/{scheme:?}/w={workers}"));
                let ent = wep(&blocks, scheme, &Engine::new(workers));
                assert_bit_identical(&ent, &ser, &format!("entity-based/{scheme:?}/w={workers}"));
            }
        }
    }

    #[test]
    fn parallel_cnp_equals_serial_cnp() {
        let g = generate(&profiles::center_dense(100, 2));
        let blocks = token_blocking(&g.dataset, ErMode::CleanClean);
        let graph = BlockingGraph::build(&blocks);
        for reciprocal in [false, true] {
            let ser = prune::cnp(&graph, WeightingScheme::Js, reciprocal, Some(3));
            let par = parallel_cnp(
                &blocks,
                WeightingScheme::Js,
                reciprocal,
                Some(3),
                &Engine::new(3),
            );
            assert_bit_identical(&par, &ser, &format!("edge-based/r={reciprocal}"));
            let ent = cnp(
                &blocks,
                WeightingScheme::Js,
                reciprocal,
                Some(3),
                &Engine::new(3),
            );
            assert_bit_identical(&ent, &ser, &format!("entity-based/r={reciprocal}"));
        }
    }

    #[test]
    fn entity_based_matches_streaming_on_all_families() {
        let g = generate(&profiles::center_dense(90, 23));
        let blocks = token_blocking(&g.dataset, ErMode::CleanClean);
        let engine = Engine::new(3);
        for scheme in [WeightingScheme::Arcs, WeightingScheme::Ejs] {
            assert_bit_identical(
                &wnp(&blocks, scheme, false, &engine),
                &streaming::wnp(&blocks, scheme, false),
                &format!("wnp/{scheme:?}"),
            );
            assert_bit_identical(
                &cnp(&blocks, scheme, true, None, &engine),
                &streaming::cnp(&blocks, scheme, true, None),
                &format!("cnp/{scheme:?}"),
            );
            assert_bit_identical(
                &wep(&blocks, scheme, &engine),
                &streaming::wep(&blocks, scheme),
                &format!("wep/{scheme:?}"),
            );
            assert_bit_identical(
                &cep(&blocks, scheme, Some(7), &engine),
                &streaming::cep(&blocks, scheme, Some(7)),
                &format!("cep/{scheme:?}"),
            );
        }
        let graph = BlockingGraph::build(&blocks);
        assert_bit_identical(
            &blast(&blocks, 0.35, &engine),
            &blast_mod::blast(&graph, 0.35),
            "blast",
        );
    }

    #[test]
    fn worker_count_invariance() {
        let g = generate(&profiles::periphery_sparse(80, 5));
        let blocks = token_blocking(&g.dataset, ErMode::CleanClean);
        let one = wep(&blocks, WeightingScheme::Arcs, &Engine::new(1));
        let many = wep(&blocks, WeightingScheme::Arcs, &Engine::new(8));
        assert_eq!(pair_set(&one), pair_set(&many));
        assert_bit_identical(&many, &one, "wep w=8 vs w=1");
    }

    #[test]
    fn entity_based_shuffles_less_than_edge_based() {
        let g = generate(&profiles::center_dense(150, 31));
        let blocks = token_blocking(&g.dataset, ErMode::CleanClean);
        let engine = Engine::new(4);
        let (_, edge_stats) =
            parallel_edge_weights_with_stats(&blocks, WeightingScheme::Arcs, &engine);
        let (_, report) = wnp_with_report(&blocks, WeightingScheme::Arcs, false, &engine);
        // Edge-based: one record per pair occurrence. Entity-based: at
        // most one weighting record per entity plus the kept votes.
        assert!(
            report.shuffled_records() < edge_stats.intermediate_pairs,
            "entity-based must shuffle less: {} vs {}",
            report.shuffled_records(),
            edge_stats.intermediate_pairs
        );
        let weighting_records = report
            .jobs
            .iter()
            .find(|(l, _)| *l == "wnp/neighbourhoods")
            .map(|(_, s)| s.intermediate_pairs)
            .unwrap();
        assert!(
            weighting_records <= blocks.num_entities(),
            "at most one record per entity neighbourhood"
        );
    }

    #[test]
    fn degenerate_collections_are_fine() {
        let ds = minoan_rdf::DatasetBuilder::new().build();
        let c = BlockCollection::from_groups(
            &ds,
            ErMode::CleanClean,
            Vec::<(String, Vec<EntityId>)>::new(),
        );
        let engine = Engine::new(2);
        assert!(wnp(&c, WeightingScheme::Arcs, false, &engine)
            .pairs
            .is_empty());
        assert!(cnp(&c, WeightingScheme::Ejs, true, None, &engine)
            .pairs
            .is_empty());
        assert!(wep(&c, WeightingScheme::Js, &engine).pairs.is_empty());
        let e = cep(&c, WeightingScheme::Cbs, None, &engine);
        assert!(e.pairs.is_empty());
        assert_eq!(e.input_edges, 0);
        assert!(weighted_edges(&c, WeightingScheme::Arcs, &engine).is_empty());
        assert!(blast(&c, 0.5, &engine).pairs.is_empty());
    }

    #[test]
    fn explicit_zero_k_reports_stats() {
        let g = generate(&profiles::center_dense(60, 8));
        let blocks = token_blocking(&g.dataset, ErMode::CleanClean);
        let graph = BlockingGraph::build(&blocks);
        let engine = Engine::new(3);
        for (out, label) in [
            (cep(&blocks, WeightingScheme::Js, Some(0), &engine), "cep"),
            (
                cnp(&blocks, WeightingScheme::Js, false, Some(0), &engine),
                "cnp",
            ),
        ] {
            assert!(out.pairs.is_empty(), "{label}");
            assert_eq!(out.input_edges, graph.num_edges(), "{label}: stats");
        }
    }
}
