//! Query-time resolution: "resolve *this* entity now" as a single
//! neighbourhood sweep, bit-identical to the incident slice of a full
//! corpus run.
//!
//! The batch pipeline answers "prune the whole corpus"; a resolution
//! *service* answers one entity at a time, thousands of times, against
//! the same corpus. Re-running a full sweep per request would make every
//! query `O(corpus)`; this module makes it `O(neighbourhood)`:
//!
//! * `resolve_rows` applies a pruning family to one entity's weight
//!   row (plus, for the node-centric families, the rows of its
//!   neighbours — loaded lazily, only when the entity's own vote does
//!   not already decide the edge). Rows come from a `RowSource`:
//!   either a fresh single-entity sweep (`SweepRows`, used by
//!   [`Session::resolve_entity`](crate::Session::resolve_entity)) or the
//!   incremental session's patched row cache (`CachedRows`).
//! * The *global* inputs a family needs — WEP's mean threshold, CEP's
//!   global top-k, CNP's default `k`, the supervised extractor's
//!   normalisation maxima — are computed once per corpus version as a
//!   `Criterion` and reused by every resolve, which is what keeps a
//!   query sub-linear: the criterion amortises across requests exactly
//!   like the session's CSR/scratch state does across runs.
//! * [`NeighbourhoodCache`] memoises whole [`ResolvedEntity`] answers
//!   for the hot entities of a skewed query mix, with invalidation
//!   driven by the dirty-entity sets
//!   [`IncrementalSession::ingest`](crate::IncrementalSession::ingest)
//!   reports (see [`locally_invalidatable`] for when that is sound).
//!
//! Bit-identity is the contract, not an aspiration: for every scheme ×
//! pruning family × worker count, `resolve_entity(e).matches` equals the
//! pairs incident to `e` in the full-corpus outcome, same order, same
//! f64 bits (`tests/resolve_entity.rs`).

use crate::blast::chi_square_from_stats;
use crate::kernel::{edge_weight, normalised, WeightGlobals};
use crate::probe;
use crate::prune::WeightedPair;
use crate::session::Pruning;
use crate::supervised::{self, FeatureExtractor, Perceptron};
use crate::sweep::{ScratchPool, SweepState};
use crate::weights::WeightingScheme;
use minoan_blocking::BlockCollection;
use minoan_common::stats::mean;
use minoan_common::{OrdF64, TopK};
use minoan_rdf::EntityId;
use std::cmp::Reverse;
use std::collections::BTreeMap;

/// One entity's query-time resolution result.
#[derive(Clone, Debug, PartialEq)]
pub struct ResolvedEntity {
    /// The queried entity.
    pub entity: EntityId,
    /// The retained comparisons incident to [`Self::entity`] — exactly
    /// the pairs a full-corpus run of the same scheme × pruning would
    /// keep for it, in the same order with the same f64 weight bits.
    pub matches: Vec<WeightedPair>,
    /// All comparable neighbours of the entity (ascending, unpruned) —
    /// the dependency set a cached copy of this result is valid under
    /// (see [`NeighbourhoodCache`]).
    pub neighbours: Vec<u32>,
}

/// Where an entity's weight row comes from: a fresh single-entity sweep
/// or the incremental session's patched row cache. A row is the sorted
/// `(neighbour, weight)` list of the entity's incident edges — the same
/// statistics a full sweep of that entity would produce.
pub(crate) trait RowSource {
    /// Loads `e`'s row into `out` (cleared first), ascending by
    /// neighbour id.
    fn load_row(&mut self, e: u32, out: &mut Vec<(u32, f64)>);
}

/// How [`SweepRows`] turns sweep statistics into row weights.
pub(crate) enum RowMode {
    /// The scheme's edge weight (normalised endpoint order).
    Scheme(WeightingScheme),
    /// BLAST's χ² weight.
    Chi2,
}

/// A [`RowSource`] that sweeps the entity's blocks on demand — one
/// pooled epoch-reset scratch per load, `O(neighbourhood)` per row.
pub(crate) struct SweepRows<'a> {
    collection: &'a BlockCollection,
    globals: &'a WeightGlobals,
    pool: &'a ScratchPool,
    mode: RowMode,
}

impl<'a> SweepRows<'a> {
    /// Rows weighted by `scheme`.
    pub(crate) fn scheme(
        collection: &'a BlockCollection,
        globals: &'a WeightGlobals,
        pool: &'a ScratchPool,
        scheme: WeightingScheme,
    ) -> Self {
        Self {
            collection,
            globals,
            pool,
            mode: RowMode::Scheme(scheme),
        }
    }

    /// Rows weighted by BLAST's χ².
    pub(crate) fn chi2(
        collection: &'a BlockCollection,
        globals: &'a WeightGlobals,
        pool: &'a ScratchPool,
    ) -> Self {
        Self {
            collection,
            globals,
            pool,
            mode: RowMode::Chi2,
        }
    }
}

impl RowSource for SweepRows<'_> {
    fn load_row(&mut self, e: u32, out: &mut Vec<(u32, f64)>) {
        out.clear();
        probe::record_resolve_sweep();
        self.pool.with(|scratch| {
            scratch.sweep(self.collection, EntityId(e));
            out.reserve(scratch.neighbours().len());
            for &y in scratch.neighbours() {
                let (lo, hi) = if e < y { (e, y) } else { (y, e) };
                let w = match self.mode {
                    RowMode::Scheme(scheme) => {
                        edge_weight(scheme, scratch, self.globals, y, lo, hi)
                    }
                    RowMode::Chi2 => chi_square_from_stats(
                        scratch.cbs_of(y),
                        self.globals.blocks_of[lo as usize],
                        self.globals.blocks_of[hi as usize],
                        self.globals.num_blocks,
                    ),
                };
                out.push((y, w));
            }
        });
    }
}

/// A [`RowSource`] over the incremental session's row cache. Valid only
/// after every mirror tail has been folded ([`CachedRows::new`] takes
/// the rows *after* normalisation), so each row is sorted and
/// duplicate-free — the same shape a fresh sweep produces.
pub(crate) struct CachedRows<'a> {
    rows: &'a [Vec<(u32, f64)>],
}

impl<'a> CachedRows<'a> {
    pub(crate) fn new(rows: &'a [Vec<(u32, f64)>]) -> Self {
        Self { rows }
    }
}

impl RowSource for CachedRows<'_> {
    fn load_row(&mut self, e: u32, out: &mut Vec<(u32, f64)>) {
        out.clear();
        if let Some(row) = self.rows.get(e as usize) {
            out.extend_from_slice(row);
        }
    }
}

/// The global inputs one scheme × pruning combination needs before a
/// single entity can be resolved — computed once per corpus version,
/// reused by every resolve against it.
pub(crate) enum Criterion {
    /// The decision reads only the entity's (and its neighbours') rows:
    /// `None`, WNP, BLAST.
    Local,
    /// WEP's global mean-positive-weight threshold.
    Wep(f64),
    /// CEP's global top-k, already in presentation order; resolving is
    /// filtering to the incident pairs.
    Cep(Vec<WeightedPair>),
    /// CNP's resolved per-node cardinality (defaults already applied).
    CnpK(usize),
    /// The supervised extractor (global per-feature maxima baked in).
    Supervised(FeatureExtractor),
}

/// Builds the [`Criterion`] for `scheme` × `pruning` on a sweep state,
/// ensuring the globals tier the per-request sweeps will need. The
/// global reductions are the exact streaming pass-1 bodies
/// ([`streaming::wep_criterion`](crate::streaming), CEP's bounded-heap
/// merge, [`streaming::supervised_extractor`](crate::streaming)), so the
/// thresholds carry the same f64 bits as a full run's.
pub(crate) fn build_criterion(
    st: &mut SweepState<'_>,
    scheme: WeightingScheme,
    pruning: &Pruning,
    threads: usize,
) -> Criterion {
    match *pruning {
        Pruning::None | Pruning::Wnp { .. } => {
            st.ensure(scheme, false, threads);
            Criterion::Local
        }
        Pruning::Blast { ratio } => {
            assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0, 1]");
            st.ensure_basic();
            Criterion::Local
        }
        Pruning::Wep => Criterion::Wep(crate::streaming::wep_criterion(st, scheme, threads).0),
        Pruning::Cep(k) => {
            Criterion::Cep(crate::streaming::cep_session(st, scheme, k, threads).pairs)
        }
        Pruning::Cnp { k, .. } => {
            st.ensure(scheme, k.is_none(), threads);
            let k = k.unwrap_or_else(|| {
                crate::prune::default_cnp_k_from(
                    st.collection.total_assignments(),
                    st.globals().active_nodes,
                )
            });
            Criterion::CnpK(k)
        }
        Pruning::Supervised(_) => {
            Criterion::Supervised(crate::streaming::supervised_extractor(st, threads))
        }
    }
}

/// Resolves one entity against a row source under a prebuilt criterion.
/// Each family's body mirrors its full-sweep counterpart restricted to
/// the edges incident to `entity`: the entity's own row decides what a
/// full run's sweep of `entity` would decide, and the node-centric
/// families load a neighbour's row only when the other endpoint's vote
/// is still needed (union: the entity voted no; reciprocal: it voted
/// yes). Edge weights are bitwise endpoint-symmetric — both endpoints'
/// sweeps produce the identical f64 — so one row's weight serves both
/// votes.
pub(crate) fn resolve_rows(
    source: &mut dyn RowSource,
    entity: EntityId,
    pruning: Pruning,
    criterion: &Criterion,
) -> ResolvedEntity {
    let e = entity.0;
    let mut row: Vec<(u32, f64)> = Vec::new();
    source.load_row(e, &mut row);
    let neighbours: Vec<u32> = row.iter().map(|&(y, _)| y).collect();
    let mut other: Vec<(u32, f64)> = Vec::new();
    let mut buf: Vec<f64> = Vec::new();
    let matches = match (pruning, criterion) {
        (Pruning::None, Criterion::Local) => {
            // The unpruned outcome stays in ascending pair order, and
            // the ascending row yields exactly its incident slice: every
            // `(y, e)` with `y < e` sorts before every `(e, y)`.
            row.iter().map(|&(y, w)| normalised(e, y, w)).collect()
        }
        (Pruning::Wep, Criterion::Wep(threshold)) => present(
            row.iter()
                .filter(|&&(_, w)| w >= *threshold && w > 0.0)
                .map(|&(y, w)| normalised(e, y, w))
                .collect(),
        ),
        (Pruning::Cep(_), Criterion::Cep(pairs)) => pairs
            .iter()
            .filter(|p| p.a == entity || p.b == entity)
            .copied()
            .collect(),
        (Pruning::Wnp { reciprocal }, Criterion::Local) => {
            let thr_e = row_mean(&row, &mut buf);
            let mut kept = Vec::new();
            for &(y, w) in &row {
                if w <= 0.0 {
                    continue;
                }
                let vote_e = w >= thr_e;
                let mut vote_y = || {
                    source.load_row(y, &mut other);
                    w >= row_mean(&other, &mut buf)
                };
                let keep = if reciprocal {
                    vote_e && vote_y()
                } else {
                    vote_e || vote_y()
                };
                if keep {
                    kept.push(normalised(e, y, w));
                }
            }
            present(kept)
        }
        (Pruning::Cnp { reciprocal, .. }, Criterion::CnpK(k)) => {
            let k = *k;
            if k == 0 {
                Vec::new()
            } else {
                let top_e = row_top_k(&row, e, k);
                let mut kept = Vec::new();
                for &(y, w) in &row {
                    if w <= 0.0 {
                        continue;
                    }
                    let p = normalised(e, y, w);
                    let key = (OrdF64(w), Reverse((p.a, p.b)));
                    let vote_e = top_e.contains(&key);
                    let mut vote_y = || {
                        source.load_row(y, &mut other);
                        row_top_k(&other, y, k).contains(&key)
                    };
                    let keep = if reciprocal {
                        vote_e && vote_y()
                    } else {
                        vote_e || vote_y()
                    };
                    if keep {
                        kept.push(p);
                    }
                }
                present(kept)
            }
        }
        (Pruning::Blast { ratio }, Criterion::Local) => {
            let max_e = row_max(&row);
            let mut kept = Vec::new();
            for &(y, w) in &row {
                if w <= 0.0 {
                    continue;
                }
                let keep = w >= ratio * max_e || {
                    source.load_row(y, &mut other);
                    w >= ratio * row_max(&other)
                };
                if keep {
                    kept.push(normalised(e, y, w));
                }
            }
            present(kept)
        }
        (p, _) => unreachable!("criterion was built for a different pruning family than {p:?}"),
    };
    ResolvedEntity {
        entity,
        matches,
        neighbours,
    }
}

/// Resolves one entity under the supervised pruner. Features are
/// orientation-dependent (the raw vector reads the endpoints in forward
/// `(a, y)` order with `a < y`), so backward edges are computed at the
/// *smaller* endpoint's sweep — exactly where the full pass computes
/// them — instead of through a row.
pub(crate) fn resolve_supervised(
    collection: &BlockCollection,
    globals: &WeightGlobals,
    pool: &ScratchPool,
    extractor: &FeatureExtractor,
    model: &Perceptron,
    entity: EntityId,
) -> ResolvedEntity {
    let e = entity.0;
    let mut matches = Vec::new();
    let mut neighbours: Vec<u32> = Vec::new();
    pool.with(|se| {
        probe::record_resolve_sweep();
        se.sweep(collection, entity);
        neighbours.extend_from_slice(se.neighbours());
        pool.with(|sy| {
            for &y in &neighbours {
                let raw = if y > e {
                    supervised::raw_forward_features(se, e, y, globals)
                } else {
                    probe::record_resolve_sweep();
                    sy.sweep(collection, EntityId(y));
                    supervised::raw_forward_features(sy, y, e, globals)
                };
                let score = model.score(&extractor.normalise(raw));
                if score > 0.0 {
                    matches.push(normalised(e, y, supervised::sigmoid(score)));
                }
            }
        });
    });
    ResolvedEntity {
        entity,
        matches: present(matches),
        neighbours,
    }
}

/// Sorts kept pairs into presentation order — the exact
/// `from_weighted_pairs` comparator (weight descending, ties by pair
/// ascending). Filtering a fully sorted list to the incident pairs
/// preserves their relative order, so sorting the incident subset with
/// the same strict comparator reproduces the full outcome's slice.
fn present(mut pairs: Vec<WeightedPair>) -> Vec<WeightedPair> {
    pairs.sort_by(|x, y| {
        y.weight
            .partial_cmp(&x.weight)
            .expect("weights are finite")
            .then_with(|| (x.a, x.b).cmp(&(y.a, y.b)))
    });
    pairs
}

/// WNP's per-node threshold from a row: the mean over *all* incident
/// weights, computed through the same `stats::mean` on the same
/// ascending-order vector the full sweep builds.
fn row_mean(row: &[(u32, f64)], buf: &mut Vec<f64>) -> f64 {
    buf.clear();
    buf.extend(row.iter().map(|&(_, w)| w));
    mean(buf)
}

type CnpKey = (OrdF64, Reverse<(EntityId, EntityId)>);

/// CNP's per-node kept set: the same bounded heap over the same strict
/// total order the full sweep pushes, in the same ascending neighbour
/// order.
fn row_top_k(row: &[(u32, f64)], a: u32, k: usize) -> Vec<CnpKey> {
    let mut top: TopK<CnpKey> = TopK::new(k);
    for &(y, w) in row {
        if w > 0.0 {
            let p = normalised(a, y, w);
            top.push((OrdF64(w), Reverse((p.a, p.b))));
        }
    }
    top.into_sorted_vec()
}

/// BLAST's per-node local maximum (0 for an all-non-positive row, like
/// the full pass's accumulator).
fn row_max(row: &[(u32, f64)]) -> f64 {
    let mut max = 0.0f64;
    for &(_, w) in row {
        if w > max {
            max = w;
        }
    }
    max
}

/// Whether a cached [`ResolvedEntity`] under `scheme` × `pruning` can be
/// kept across an ingest by invalidating only the entries whose
/// dependency sets intersect the ingest's dirty entities — or whether
/// every cached answer must be dropped.
///
/// The per-entry invalidation is sound exactly when a batch can only
/// change answers through the rows of dirty entities:
///
/// * the **scheme** must be delta-local (CBS, JS, ARCS): every changed
///   edge has a dirty endpoint, and a dirty entity's row change
///   invalidates every entry depending on it. ECBS/EJS read the global
///   block/edge totals, which every arrival shifts — all answers change
///   with no dirty-set trace.
/// * the **pruning criterion** must be row-local: `None`, WNP, and CNP
///   with an *explicit* `k`. WEP's threshold, CEP's top-k, default-`k`
///   CNP (its `k` reads the global assignment/active-node counts), BLAST
///   (χ² over `|B|`) and the supervised extractor are all global — one
///   arrival may move them and silently re-decide edges between clean
///   entities.
///
/// For every other combination, clear the cache on ingest — still
/// correct, just colder.
pub fn locally_invalidatable(scheme: WeightingScheme, pruning: Pruning) -> bool {
    matches!(
        scheme,
        WeightingScheme::Cbs | WeightingScheme::Js | WeightingScheme::Arcs
    ) && matches!(
        pruning,
        Pruning::None | Pruning::Wnp { .. } | Pruning::Cnp { k: Some(_), .. }
    )
}

struct CacheEntry {
    value: ResolvedEntity,
    /// `neighbours ∪ {entity}`, sorted — the entities whose rows this
    /// answer was computed from.
    deps: Vec<u32>,
    /// Last-touched tick (larger = more recent).
    stamp: u64,
}

/// An LRU cache of hot [`ResolvedEntity`] answers.
///
/// **Invalidation invariant**: an entry for entity `e` was computed from
/// the rows of `deps = {e} ∪ neighbours(e)`. An ingest can change `e`'s
/// answer only by changing one of those rows, and every changed row
/// belongs to a dirty entity (a new edge `(e, z)` requires a shared
/// touched block, which makes `e` itself dirty). So when
/// [`locally_invalidatable`] holds, `deps ∩ dirty = ∅` proves the cached
/// answer is still bit-identical to a fresh resolve — that is what
/// [`Self::invalidate`] checks, and what the serve-consistency property
/// suite pins.
///
/// Capacity 0 disables the cache entirely (every get misses silently,
/// inserts are dropped) — the bench's "uncached" variant.
pub struct NeighbourhoodCache {
    capacity: usize,
    tick: u64,
    entries: BTreeMap<u32, CacheEntry>,
}

impl NeighbourhoodCache {
    /// A cache holding at most `capacity` resolved entities.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            tick: 0,
            entries: BTreeMap::new(),
        }
    }

    /// The configured capacity (0 = disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Cached entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a still-valid cached answer, refreshing its recency.
    /// Ticks the [`probe`] hit/miss counters unless the cache is
    /// disabled.
    pub fn get(&mut self, entity: EntityId) -> Option<&ResolvedEntity> {
        if self.capacity == 0 {
            return None;
        }
        match self.entries.get_mut(&entity.0) {
            Some(entry) => {
                self.tick += 1;
                entry.stamp = self.tick;
                probe::record_cache_hit();
                Some(&entry.value)
            }
            None => {
                probe::record_cache_miss();
                None
            }
        }
    }

    /// Admits a freshly resolved answer, evicting the least recently
    /// used entry at capacity.
    pub fn insert(&mut self, value: ResolvedEntity) {
        if self.capacity == 0 {
            return;
        }
        let key = value.entity.0;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, en)| en.stamp) {
                self.entries.remove(&victim);
            }
        }
        let mut deps = value.neighbours.clone();
        if let Err(pos) = deps.binary_search(&key) {
            deps.insert(pos, key);
        }
        self.tick += 1;
        let stamp = self.tick;
        self.entries.insert(key, CacheEntry { value, deps, stamp });
    }

    /// Drops every entry whose dependency set intersects `dirty`
    /// (an ingest's dirty-entity report); returns how many were
    /// dropped. Only sound when [`locally_invalidatable`] holds for the
    /// session's combination — otherwise call [`Self::clear`].
    pub fn invalidate(&mut self, dirty: &[EntityId]) -> usize {
        if self.entries.is_empty() || dirty.is_empty() {
            return 0;
        }
        let mut ids: Vec<u32> = dirty.iter().map(|e| e.0).collect();
        ids.sort_unstable();
        let before = self.entries.len();
        self.entries
            .retain(|_, entry| !intersects(&entry.deps, &ids));
        before - self.entries.len()
    }

    /// Drops everything (the safe response to an ingest under a global
    /// criterion, or to a scheme/pruning switch).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Whether two ascending sorted id lists share an element (two-pointer
/// walk; both inputs are typically short).
fn intersects(a: &[u32], b: &[u32]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resolved(e: u32, neighbours: &[u32]) -> ResolvedEntity {
        ResolvedEntity {
            entity: EntityId(e),
            matches: Vec::new(),
            neighbours: neighbours.to_vec(),
        }
    }

    #[test]
    fn cache_evicts_least_recently_used() {
        let mut c = NeighbourhoodCache::new(2);
        c.insert(resolved(1, &[2]));
        c.insert(resolved(2, &[1]));
        assert!(c.get(EntityId(1)).is_some(), "1 is now the most recent");
        c.insert(resolved(3, &[4]));
        assert_eq!(c.len(), 2);
        assert!(c.get(EntityId(2)).is_none(), "2 was the LRU victim");
        assert!(c.get(EntityId(1)).is_some());
        assert!(c.get(EntityId(3)).is_some());
    }

    #[test]
    fn invalidation_drops_exactly_the_dependent_entries() {
        let mut c = NeighbourhoodCache::new(8);
        c.insert(resolved(1, &[5, 9]));
        c.insert(resolved(2, &[6]));
        c.insert(resolved(3, &[7]));
        // Entity 9 is a neighbour-dep of entry 1; entity 2 is its own dep.
        let dropped = c.invalidate(&[EntityId(9), EntityId(2)]);
        assert_eq!(dropped, 2);
        assert!(c.get(EntityId(1)).is_none());
        assert!(c.get(EntityId(2)).is_none());
        assert!(c.get(EntityId(3)).is_some());
    }

    #[test]
    fn zero_capacity_disables_everything() {
        let mut c = NeighbourhoodCache::new(0);
        let hits = probe::cache_hits();
        let misses = probe::cache_misses();
        c.insert(resolved(1, &[]));
        assert!(c.is_empty());
        assert!(c.get(EntityId(1)).is_none());
        assert_eq!(probe::cache_hits(), hits, "disabled cache must not tick");
        assert_eq!(probe::cache_misses(), misses);
    }

    #[test]
    fn local_invalidation_matrix() {
        use WeightingScheme as S;
        let wnp = Pruning::Wnp { reciprocal: true };
        assert!(locally_invalidatable(S::Cbs, Pruning::None));
        assert!(locally_invalidatable(S::Js, wnp));
        assert!(locally_invalidatable(
            S::Arcs,
            Pruning::Cnp {
                reciprocal: false,
                k: Some(3)
            }
        ));
        // Global criteria, or global schemes, force a full clear.
        assert!(!locally_invalidatable(S::Ecbs, wnp));
        assert!(!locally_invalidatable(S::Ejs, Pruning::None));
        assert!(!locally_invalidatable(S::Js, Pruning::Wep));
        assert!(!locally_invalidatable(S::Js, Pruning::Cep(None)));
        assert!(!locally_invalidatable(
            S::Js,
            Pruning::Cnp {
                reciprocal: false,
                k: None
            }
        ));
        assert!(!locally_invalidatable(S::Cbs, Pruning::blast()));
    }
}
