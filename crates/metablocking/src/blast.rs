//! BLAST-style meta-blocking: χ² weighting with loose per-node pruning.
//!
//! BLAST (Simonini, Bergamaschi & Jagadish, PVLDB 2016) replaces the
//! co-occurrence-count weights with the **Pearson χ² test statistic** of
//! the independence hypothesis "entity `i` appearing in a block is
//! independent of entity `j` appearing in it": high χ² means the two
//! entities co-occur far more often than chance, i.e. strong match
//! evidence. Pruning is *loose* node-centric: each node keeps edges whose
//! weight is at least a `ratio` of its local **maximum** (not mean), and an
//! edge survives if **either** endpoint keeps it.
//!
//! With the 2×2 contingency table over the `|B|` blocks
//!
//! ```text
//!            j ∈ b     j ∉ b
//! i ∈ b      n11=CBS   n12=|B_i|−CBS
//! i ∉ b      n21=|B_j|−CBS   n22=|B|−|B_i|−|B_j|+CBS
//! ```
//!
//! χ² = |B| · (n11·n22 − n12·n21)² / (r1·r2·c1·c2), zero when any marginal
//! is empty.

use crate::graph::{BlockingGraph, Edge};
use crate::prune::{PrunedComparisons, WeightedPair};
use crate::weights::WeightingScheme;
use minoan_rdf::EntityId;

/// Default keep ratio of the loose pruning (BLAST's recommended 0.35…0.5
/// range; JedAI defaults to 0.5 of the *sum of the two node maxima* — here
/// we keep the simpler per-node-max formulation and default to 0.35).
pub const DEFAULT_RATIO: f64 = 0.35;

/// Pearson χ² weight of `edge` in `graph`.
pub fn chi_square_weight(graph: &BlockingGraph, edge: &Edge) -> f64 {
    chi_square_from_stats(
        edge.common_blocks,
        graph.blocks_of(edge.a),
        graph.blocks_of(edge.b),
        graph.num_blocks(),
    )
}

/// Pearson χ² from raw statistics — the shared kernel of the materialised
/// and streaming BLAST paths (bit-identical results for equal inputs).
pub fn chi_square_from_stats(
    common_blocks: u32,
    blocks_a: u32,
    blocks_b: u32,
    num_blocks: usize,
) -> f64 {
    let total = num_blocks as f64;
    if total <= 0.0 {
        return 0.0;
    }
    let n11 = common_blocks as f64;
    let bi = blocks_a as f64;
    let bj = blocks_b as f64;
    let n12 = bi - n11;
    let n21 = bj - n11;
    let n22 = total - bi - bj + n11;
    let r1 = n11 + n12;
    let r2 = n21 + n22;
    let c1 = n11 + n21;
    let c2 = n12 + n22;
    let denom = r1 * r2 * c1 * c2;
    if denom <= 0.0 {
        return 0.0;
    }
    let d = n11 * n22 - n12 * n21;
    (total * d * d / denom).max(0.0)
}

/// χ² weights of every edge, aligned with `graph.edges()`.
pub fn chi_square_weights(graph: &BlockingGraph) -> Vec<f64> {
    graph
        .edges()
        .iter()
        .map(|e| chi_square_weight(graph, e))
        .collect()
}

/// BLAST pruning: per node, keep edges with weight ≥ `ratio · local_max`;
/// an edge survives if either endpoint keeps it (redundancy semantics).
///
/// The returned [`PrunedComparisons`] reports scheme
/// [`WeightingScheme::Cbs`] as a placeholder label; the weights themselves
/// are the χ² values.
///
/// # Panics
/// Panics unless `0 < ratio ≤ 1`.
#[doc(hidden)]
pub fn blast(graph: &BlockingGraph, ratio: f64) -> PrunedComparisons {
    assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0, 1]");
    let weights = chi_square_weights(graph);
    // Local maxima per node.
    let n = graph.num_nodes();
    let mut local_max = vec![0.0f64; n];
    for (i, e) in graph.edges().iter().enumerate() {
        let w = weights[i];
        if w > local_max[e.a.index()] {
            local_max[e.a.index()] = w;
        }
        if w > local_max[e.b.index()] {
            local_max[e.b.index()] = w;
        }
    }
    let mut pairs: Vec<WeightedPair> = graph
        .edges()
        .iter()
        .enumerate()
        .filter(|(i, e)| {
            let w = weights[*i];
            w > 0.0 && (w >= ratio * local_max[e.a.index()] || w >= ratio * local_max[e.b.index()])
        })
        .map(|(i, e)| WeightedPair {
            a: e.a,
            b: e.b,
            weight: weights[i],
        })
        .collect();
    pairs.sort_by(|x, y| {
        y.weight
            .partial_cmp(&x.weight)
            .expect("chi-square weights are finite")
            .then_with(|| (x.a, x.b).cmp(&(y.a, y.b)))
    });
    PrunedComparisons {
        pairs,
        scheme: WeightingScheme::Cbs,
        input_edges: graph.num_edges(),
    }
}

/// Convenience accessor: the χ² weight of a specific pair, if the edge
/// exists.
pub fn pair_weight(graph: &BlockingGraph, a: EntityId, b: EntityId) -> Option<f64> {
    let (lo, hi) = (a.min(b), a.max(b));
    graph
        .incident(lo)
        .iter()
        .map(|&i| (i, graph.edge(i)))
        .find(|(_, e)| e.a == lo && e.b == hi)
        .map(|(i, _)| chi_square_weight(graph, graph.edge(i)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use minoan_blocking::{BlockCollection, ErMode};
    use minoan_rdf::DatasetBuilder;

    /// Entities 0,1 in KB a; 2,3 in KB b. (0,2) co-occur in most blocks,
    /// (1,3) only in the big catch-all block.
    fn graph() -> BlockingGraph {
        let mut b = DatasetBuilder::new();
        let k0 = b.add_kb("a", "http://a/");
        let k1 = b.add_kb("b", "http://b/");
        for i in 0..2 {
            b.add_literal(k0, &format!("http://a/{i}"), "http://p", "x");
        }
        for i in 2..4 {
            b.add_literal(k1, &format!("http://b/{i}"), "http://p", "x");
        }
        let ds = b.build();
        let e = EntityId;
        let groups = vec![
            ("k0".to_string(), vec![e(1), e(3)]),
            ("k1".to_string(), vec![e(0), e(2)]),
            ("k2".to_string(), vec![e(0), e(2)]),
            ("k3".to_string(), vec![e(0), e(2), e(3)]),
            ("k4".to_string(), vec![e(0), e(1), e(2), e(3)]),
            ("k5".to_string(), vec![e(1), e(2)]),
        ];
        let c = BlockCollection::from_groups(&ds, ErMode::CleanClean, groups);
        BlockingGraph::build(&c)
    }

    #[test]
    fn chi_square_rewards_systematic_cooccurrence() {
        let g = graph();
        let strong = pair_weight(&g, EntityId(0), EntityId(2)).unwrap();
        let weak = pair_weight(&g, EntityId(1), EntityId(3)).unwrap();
        assert!(
            strong > weak,
            "systematic co-occurrence should outweigh catch-all: {strong} vs {weak}"
        );
    }

    #[test]
    fn chi_square_is_finite_and_nonnegative() {
        let g = graph();
        for w in chi_square_weights(&g) {
            assert!(w.is_finite() && w >= 0.0);
        }
    }

    #[test]
    fn blast_keeps_local_maxima() {
        let g = graph();
        let pruned = blast(&g, 0.99);
        // Every node's strongest edge must survive at ratio ≈ 1.
        for e in g.edges() {
            let w = chi_square_weight(&g, e);
            let is_max_somewhere = [e.a, e.b].iter().any(|&n| {
                g.incident(n)
                    .iter()
                    .all(|&i| chi_square_weight(&g, g.edge(i)) <= w + 1e-12)
            });
            if is_max_somewhere && w > 0.0 {
                assert!(
                    pruned.pairs.iter().any(|p| p.a == e.a && p.b == e.b),
                    "local max edge ({:?},{:?}) dropped",
                    e.a,
                    e.b
                );
            }
        }
    }

    #[test]
    fn lower_ratio_keeps_more() {
        let g = graph();
        let strict = blast(&g, 1.0).pairs.len();
        let loose = blast(&g, 0.1).pairs.len();
        assert!(loose >= strict);
        assert!(loose <= g.num_edges());
    }

    #[test]
    fn output_is_sorted_descending() {
        let g = graph();
        let pruned = blast(&g, DEFAULT_RATIO);
        assert!(pruned.pairs.windows(2).all(|w| w[0].weight >= w[1].weight));
        assert_eq!(pruned.input_edges, g.num_edges());
    }

    #[test]
    #[should_panic(expected = "ratio")]
    fn bad_ratio_rejected() {
        blast(&graph(), 0.0);
    }

    #[test]
    fn zero_weight_edges_are_dropped() {
        // A block structure where an edge's χ² is exactly zero (perfect
        // independence) — single block containing everything.
        let mut b = DatasetBuilder::new();
        let k0 = b.add_kb("a", "http://a/");
        let k1 = b.add_kb("b", "http://b/");
        b.add_literal(k0, "http://a/0", "http://p", "x");
        b.add_literal(k1, "http://b/1", "http://p", "x");
        let ds = b.build();
        let groups = vec![("k".to_string(), vec![EntityId(0), EntityId(1)])];
        let c = BlockCollection::from_groups(&ds, ErMode::CleanClean, groups);
        let g = BlockingGraph::build(&c);
        // |B| = 1, B_i = B_j = CBS = 1 → n22 row/col zero → weight 0.
        let pruned = blast(&g, 0.5);
        assert!(pruned.pairs.is_empty());
    }
}
