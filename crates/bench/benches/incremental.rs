//! Criterion micro-benchmarks of the incremental resolver: per-arrival
//! cost across arrival orders (E11's latency companion).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use minoan_datagen::{generate, profiles, ArrivalOrder};
use minoan_er::{IncrementalConfig, IncrementalResolver, Matcher, MatcherConfig};

fn bench_arrivals(c: &mut Criterion) {
    let world = generate(&profiles::center_dense(300, 42));
    let matcher = Matcher::new(&world.dataset, MatcherConfig::default());
    for order in [
        ArrivalOrder::Shuffled { seed: 7 },
        ArrivalOrder::KbSequential,
    ] {
        let stream = order.order(&world.dataset, &world.truth);
        c.bench_function(format!("incremental/full stream ({})", order.name()), |b| {
            b.iter_batched(
                || IncrementalResolver::new(&world.dataset, &matcher, IncrementalConfig::default()),
                |mut resolver| {
                    resolver.arrive_all(stream.iter().copied());
                    resolver.comparisons()
                },
                BatchSize::SmallInput,
            )
        });
    }
}

fn bench_composite_rules(c: &mut Criterion) {
    use minoan_blocking::ErMode;
    use minoan_er::{CompositeConfig, CompositeResolver};
    let world = generate(&profiles::center_dense(300, 42));
    let pairs = minoan_bench::candidate_pairs_public(&world, ErMode::CleanClean);
    let matcher = Matcher::new(&world.dataset, MatcherConfig::default());
    c.bench_function("rules/composite resolver 300 entities", |b| {
        b.iter(|| {
            CompositeResolver::new(&world.dataset, &matcher, CompositeConfig::default())
                .run(&pairs)
                .matches
                .len()
        })
    });
}

criterion_group!(benches, bench_arrivals, bench_composite_rules);
criterion_main!(benches);
