//! Criterion benches for the blocking layer (supports E2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minoan_blocking::{builders, filter, purge, CanopyConfig, ErMode, LshConfig, Method};
use minoan_datagen::{generate, profiles};
use std::hint::black_box;

fn bench_blocking(c: &mut Criterion) {
    let mut group = c.benchmark_group("blocking");
    group.sample_size(10);
    for &n in &[200usize, 500] {
        let world = generate(&profiles::center_dense(n, 7));
        group.bench_with_input(BenchmarkId::new("token", n), &world, |b, w| {
            b.iter(|| black_box(builders::token_blocking(&w.dataset, ErMode::CleanClean)));
        });
        group.bench_with_input(BenchmarkId::new("token+uri", n), &world, |b, w| {
            b.iter(|| {
                black_box(builders::token_and_uri_blocking(
                    &w.dataset,
                    ErMode::CleanClean,
                ))
            });
        });
        group.bench_with_input(BenchmarkId::new("attr-clustering", n), &world, |b, w| {
            b.iter(|| {
                black_box(builders::attribute_clustering_blocking(
                    &w.dataset,
                    ErMode::CleanClean,
                    0.2,
                ))
            });
        });
        let blocks = builders::token_blocking(&world.dataset, ErMode::CleanClean);
        group.bench_with_input(BenchmarkId::new("purge+filter", n), &blocks, |b, blocks| {
            b.iter(|| black_box(filter::filter(&purge::purge(blocks).collection)));
        });
    }
    group.finish();
}

/// The advanced blocker families (supports E9).
fn bench_blocker_families(c: &mut Criterion) {
    let mut group = c.benchmark_group("blocking-families");
    group.sample_size(10);
    let world = generate(&profiles::center_dense(300, 7));
    let methods: Vec<(&str, Method)> = vec![
        ("qgrams3", Method::QGrams(3)),
        ("ext-qgrams", Method::ExtendedQGrams(3, 0.8)),
        ("snm6", Method::SortedNeighborhood(6)),
        ("adaptive-snm", Method::AdaptiveSortedNeighborhood(4, 32)),
        ("minhash-lsh", Method::MinHashLsh(LshConfig::default())),
        ("canopy", Method::Canopy(CanopyConfig::default())),
    ];
    for (name, method) in methods {
        group.bench_function(name, |b| {
            b.iter(|| black_box(method.run(&world.dataset, ErMode::CleanClean)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_blocking, bench_blocker_families);
criterion_main!(benches);
