//! Criterion micro-benchmarks of the triple-store substrate: bulk load +
//! freeze, pattern scans, snapshot encode/decode.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use minoan_datagen::{generate, profiles};
use minoan_rdf::KbId;
use minoan_store::{FrozenStore, TripleStore};

fn build_store(scale: usize) -> FrozenStore {
    let world = generate(&profiles::center_dense(scale, 42));
    let mut store = TripleStore::new();
    for kb in 0..world.dataset.kb_count() {
        let id = KbId(kb as u16);
        let doc = world.dataset.to_ntriples(id);
        store
            .load_ntriples(&world.dataset.kb(id).name, &doc)
            .expect("generated N-Triples");
    }
    store.freeze()
}

fn bench_load_freeze(c: &mut Criterion) {
    let world = generate(&profiles::center_dense(300, 42));
    let docs: Vec<(String, String)> = (0..world.dataset.kb_count())
        .map(|kb| {
            let id = KbId(kb as u16);
            (
                world.dataset.kb(id).name.to_string(),
                world.dataset.to_ntriples(id),
            )
        })
        .collect();
    c.bench_function("store/load+freeze 300 entities", |b| {
        b.iter_batched(
            TripleStore::new,
            |mut store| {
                for (name, doc) in &docs {
                    store.load_ntriples(name, doc).unwrap();
                }
                store.freeze()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_pattern_scans(c: &mut Criterion) {
    let store = build_store(300);
    let predicates: Vec<_> = store
        .stats()
        .predicate_histogram
        .iter()
        .map(|&(p, _)| p)
        .take(8)
        .collect();
    c.bench_function("store/predicate scans (POS)", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for &p in &predicates {
                n += store.match_pattern(None, Some(p), None).count();
            }
            n
        })
    });
    let subjects = store.graph_subjects(minoan_store::GraphId(0));
    c.bench_function("store/subject scans (SPO)", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for &s in subjects.iter().take(200) {
                n += store.match_pattern(Some(s), None, None).count();
            }
            n
        })
    });
}

fn bench_snapshot(c: &mut Criterion) {
    let store = build_store(300);
    c.bench_function("store/snapshot encode", |b| b.iter(|| store.to_snapshot()));
    let bytes = store.to_snapshot();
    c.bench_function("store/snapshot decode", |b| {
        b.iter(|| FrozenStore::from_snapshot(&bytes).unwrap())
    });
}

criterion_group!(
    benches,
    bench_load_freeze,
    bench_pattern_scans,
    bench_snapshot
);
criterion_main!(benches);
