//! Criterion benches for meta-blocking (supports E3), plus the
//! build-vs-stream scaling harness that records `BENCH_metablocking.json`.
//!
//! The scaling harness compares, at several world sizes:
//! * the legacy hash-map graph build (global
//!   `FxHashMap<(EntityId, EntityId), (u32, f64)>` accumulator — the
//!   pre-CSR implementation, reproduced here as the baseline),
//! * the CSR counting-sort build, serial and parallel,
//! * materialised WNP (graph build + prune) vs streaming WNP, serial and
//!   parallel,
//! * materialised WEP and CEP (graph build + prune) vs their graph-free
//!   streaming counterparts (two-pass pairwise mean / merged per-thread
//!   top-k heaps), serial and parallel,
//! * the two MapReduce strategies — edge-based (one shuffled record per
//!   pair occurrence) vs entity-partitioned (at most one per entity
//!   neighbourhood) — recording shuffle volume and the modeled makespan
//!   at 1/4/16 workers from the measured task durations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minoan_blocking::{builders, filter, purge, BlockCollection, ErMode};
use minoan_common::FxHashMap;
use minoan_datagen::{generate, profiles};
use minoan_mapreduce::Engine;
use minoan_metablocking::{
    parallel, prune, streaming, BlockingGraph, Pruning, Session, StreamingOptions, WeightingScheme,
};
use minoan_rdf::EntityId;
use std::hint::black_box;
use std::time::Instant;

fn bench_metablocking(c: &mut Criterion) {
    let world = generate(&profiles::center_dense(400, 11));
    let blocks = builders::token_blocking(&world.dataset, ErMode::CleanClean);
    let cleaned = filter::filter(&purge::purge(&blocks).collection);

    let mut group = c.benchmark_group("metablocking");
    group.sample_size(10);
    group.bench_function("graph-build", |b| {
        b.iter(|| black_box(BlockingGraph::build(&cleaned)));
    });

    let graph = BlockingGraph::build(&cleaned);
    for scheme in WeightingScheme::ALL {
        group.bench_with_input(
            BenchmarkId::new("weights", scheme.name()),
            &scheme,
            |b, &s| b.iter(|| black_box(s.all_weights(&graph))),
        );
    }
    group.bench_function("wep/arcs", |b| {
        b.iter(|| black_box(prune::wep(&graph, WeightingScheme::Arcs)));
    });
    group.bench_function("wep/arcs-streaming", |b| {
        b.iter(|| black_box(streaming::wep(&cleaned, WeightingScheme::Arcs)));
    });
    group.bench_function("wnp/arcs", |b| {
        b.iter(|| black_box(prune::wnp(&graph, WeightingScheme::Arcs, false)));
    });
    group.bench_function("wnp/arcs-streaming", |b| {
        b.iter(|| black_box(streaming::wnp(&cleaned, WeightingScheme::Arcs, false)));
    });
    group.bench_function("cnp/js", |b| {
        b.iter(|| black_box(prune::cnp(&graph, WeightingScheme::Js, false, None)));
    });
    group.bench_function("cnp/js-streaming", |b| {
        b.iter(|| black_box(streaming::cnp(&cleaned, WeightingScheme::Js, false, None)));
    });
    group.bench_function("cep/ecbs", |b| {
        b.iter(|| black_box(prune::cep(&graph, WeightingScheme::Ecbs, None)));
    });
    group.bench_function("cep/ecbs-streaming", |b| {
        b.iter(|| black_box(streaming::cep(&cleaned, WeightingScheme::Ecbs, None)));
    });
    // The session API's reason to exist: sweeping all five schemes reuses
    // the shared state instead of rebuilding it per scheme.
    group.bench_function("sweep5-wnp/session", |b| {
        b.iter(|| {
            let mut session = Session::new(&cleaned);
            session.pruning(Pruning::Wnp { reciprocal: false });
            for scheme in WeightingScheme::ALL {
                black_box(session.scheme(scheme).run());
            }
        });
    });
    group.bench_function("sweep5-wnp/rebuild", |b| {
        b.iter(|| {
            for scheme in WeightingScheme::ALL {
                let g = BlockingGraph::build(&cleaned);
                black_box(prune::wnp(&g, scheme, false));
            }
        });
    });
    group.finish();
}

/// The pre-CSR `BlockingGraph::build`: a global hash-map accumulator over
/// all pair occurrences, then a sort. Kept as the benchmark baseline.
fn hashmap_baseline_build(collection: &BlockCollection) -> usize {
    let mut acc: FxHashMap<(EntityId, EntityId), (u32, f64)> = FxHashMap::default();
    for (bid, a, b) in collection.pair_occurrences() {
        let card = collection.block(bid).comparisons as f64;
        let e = acc.entry((a, b)).or_insert((0, 0.0));
        e.0 += 1;
        e.1 += 1.0 / card.max(1.0);
    }
    let mut edges: Vec<(EntityId, EntityId, u32, f64)> = acc
        .into_iter()
        .map(|((a, b), (cbs, arcs))| (a, b, cbs, arcs))
        .collect();
    edges.sort_unstable_by_key(|e| (e.0, e.1));
    let mut adjacency: Vec<Vec<u32>> = vec![Vec::new(); collection.num_entities()];
    for (i, e) in edges.iter().enumerate() {
        adjacency[e.0.index()].push(i as u32);
        adjacency[e.1.index()].push(i as u32);
    }
    black_box(&adjacency);
    edges.len()
}

struct Record {
    world: usize,
    edges: usize,
    variant: &'static str,
    nanos: u128,
}

/// One MapReduce-strategy row: shuffle volume plus the makespan modeled
/// from the measured task durations at several worker counts.
struct MrRecord {
    world: usize,
    edges: usize,
    strategy: &'static str,
    shuffled_records: usize,
    modeled_nanos: [u64; 3],
}

/// Modeled-makespan worker counts recorded per strategy.
const MR_WORKERS: [usize; 3] = [1, 4, 16];

fn time<F: FnMut() -> R, R>(mut f: F, reps: u32) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed().as_nanos());
    }
    best
}

/// Scaling harness: build-vs-stream at several world sizes; records
/// throughput numbers into `BENCH_metablocking.json` at the repo root.
fn bench_scaling(_c: &mut Criterion) {
    // `MINOAN_BENCH_SIZES=skip` (or `0`) skips the harness entirely —
    // it runs whole-world workloads for minutes and rewrites
    // BENCH_metablocking.json, which is not always wanted on a filtered
    // `cargo bench` invocation.
    let sizes: Vec<usize> = match std::env::var("MINOAN_BENCH_SIZES") {
        Ok(s) if s == "skip" || s == "0" => {
            println!("scaling harness skipped (MINOAN_BENCH_SIZES={s})");
            return;
        }
        Ok(s) => s.split(',').filter_map(|x| x.trim().parse().ok()).collect(),
        Err(_) => vec![2_000, 10_000, 50_000],
    };
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut records: Vec<Record> = Vec::new();
    let mut mr_records: Vec<MrRecord> = Vec::new();
    println!("scaling harness: sizes {sizes:?}, {threads} threads");

    for &n in &sizes {
        let reps = if n >= 20_000 { 2 } else { 3 };
        let world = generate(&profiles::center_dense(n, 11));
        let blocks = builders::token_blocking(&world.dataset, ErMode::CleanClean);
        let cleaned = filter::filter(&purge::purge(&blocks).collection);
        let edges = BlockingGraph::build(&cleaned).num_edges();
        println!("world {n}: {} blocks, {edges} graph edges", cleaned.len());

        let mut rec = |variant: &'static str, nanos: u128| {
            println!(
                "  {variant:<24} {:>10.2} ms   ({:.1} Medges/s)",
                nanos as f64 / 1e6,
                edges as f64 / (nanos as f64 / 1e9) / 1e6
            );
            records.push(Record {
                world: n,
                edges,
                variant,
                nanos,
            });
        };

        rec(
            "build/hashmap-baseline",
            time(|| hashmap_baseline_build(&cleaned), reps),
        );
        rec(
            "build/csr-serial",
            time(|| BlockingGraph::build_with_threads(&cleaned, 1), reps),
        );
        rec(
            "build/csr-parallel",
            time(
                || BlockingGraph::build_with_threads(&cleaned, threads),
                reps,
            ),
        );

        let graph = BlockingGraph::build(&cleaned);
        rec(
            "wnp/materialized-prune",
            time(|| prune::wnp(&graph, WeightingScheme::Arcs, false), reps),
        );
        rec(
            "wnp/materialized-total",
            time(
                || {
                    let g = BlockingGraph::build(&cleaned);
                    prune::wnp(&g, WeightingScheme::Arcs, false)
                },
                reps,
            ),
        );
        rec(
            "wnp/streaming-serial",
            time(
                || {
                    streaming::wnp_with(
                        &cleaned,
                        WeightingScheme::Arcs,
                        false,
                        &StreamingOptions::with_threads(1),
                    )
                },
                reps,
            ),
        );
        rec(
            "wnp/streaming-parallel",
            time(
                || {
                    streaming::wnp_with(
                        &cleaned,
                        WeightingScheme::Arcs,
                        false,
                        &StreamingOptions::with_threads(threads),
                    )
                },
                reps,
            ),
        );

        rec(
            "wep/materialized-total",
            time(
                || {
                    let g = BlockingGraph::build(&cleaned);
                    prune::wep(&g, WeightingScheme::Arcs)
                },
                reps,
            ),
        );
        rec(
            "wep/streaming-serial",
            time(
                || {
                    streaming::wep_with(
                        &cleaned,
                        WeightingScheme::Arcs,
                        &StreamingOptions::with_threads(1),
                    )
                },
                reps,
            ),
        );
        rec(
            "wep/streaming-parallel",
            time(
                || {
                    streaming::wep_with(
                        &cleaned,
                        WeightingScheme::Arcs,
                        &StreamingOptions::with_threads(threads),
                    )
                },
                reps,
            ),
        );

        rec(
            "cep/materialized-total",
            time(
                || {
                    let g = BlockingGraph::build(&cleaned);
                    prune::cep(&g, WeightingScheme::Ecbs, None)
                },
                reps,
            ),
        );
        rec(
            "cep/streaming-serial",
            time(
                || {
                    streaming::cep_with(
                        &cleaned,
                        WeightingScheme::Ecbs,
                        None,
                        &StreamingOptions::with_threads(1),
                    )
                },
                reps,
            ),
        );
        rec(
            "cep/streaming-parallel",
            time(
                || {
                    streaming::cep_with(
                        &cleaned,
                        WeightingScheme::Ecbs,
                        None,
                        &StreamingOptions::with_threads(threads),
                    )
                },
                reps,
            ),
        );

        // Scheme-sweep row family: all five schemes × WNP through one
        // Session (shared CSR build / sweep state) vs the pre-session
        // shape (rebuild the shared state per scheme). Same pruned
        // output, different amount of rebuilt state.
        rec(
            "sweep5-wnp/materialized-session",
            time(
                || {
                    let mut session = Session::new(&cleaned);
                    session.pruning(Pruning::Wnp { reciprocal: false });
                    for scheme in WeightingScheme::ALL {
                        black_box(session.scheme(scheme).run());
                    }
                },
                reps,
            ),
        );
        rec(
            "sweep5-wnp/materialized-rebuild",
            time(
                || {
                    for scheme in WeightingScheme::ALL {
                        let g = BlockingGraph::build(&cleaned);
                        black_box(prune::wnp(&g, scheme, false));
                    }
                },
                reps,
            ),
        );
        rec(
            "sweep5-wnp/streaming-session",
            time(
                || {
                    let mut session = Session::new(&cleaned);
                    session
                        .backend(minoan_metablocking::ExecutionBackend::Streaming)
                        .workers(threads)
                        .pruning(Pruning::Wnp { reciprocal: false });
                    for scheme in WeightingScheme::ALL {
                        black_box(session.scheme(scheme).run());
                    }
                },
                reps,
            ),
        );
        rec(
            "sweep5-wnp/streaming-rebuild",
            time(
                || {
                    let opts = StreamingOptions::with_threads(threads);
                    for scheme in WeightingScheme::ALL {
                        black_box(streaming::wnp_with(&cleaned, scheme, false, &opts));
                    }
                },
                reps,
            ),
        );

        // MapReduce strategies: per-occurrence (edge-based) vs
        // per-entity-neighbourhood (entity-partitioned) shuffle volume,
        // and the makespan modeled from the measured task durations.
        let engine = Engine::new(threads);
        let mut mr_rec = |strategy: &'static str, shuffled: usize, modeled: [u64; 3]| {
            println!(
                "  mapreduce {strategy:<22} {shuffled:>9} shuffled records   modeled \
                 {:.1}/{:.1}/{:.1} ms at {MR_WORKERS:?} workers",
                modeled[0] as f64 / 1e6,
                modeled[1] as f64 / 1e6,
                modeled[2] as f64 / 1e6,
            );
            mr_records.push(MrRecord {
                world: n,
                edges,
                strategy,
                shuffled_records: shuffled,
                modeled_nanos: modeled,
            });
        };
        let (_, edge_stats) =
            parallel::parallel_edge_weights_with_stats(&cleaned, WeightingScheme::Arcs, &engine);
        mr_rec(
            "edge-based/weights",
            edge_stats.intermediate_pairs,
            MR_WORKERS.map(|w| edge_stats.modeled_nanos(w)),
        );
        let (_, report) =
            parallel::wnp_with_report(&cleaned, WeightingScheme::Arcs, false, &engine);
        mr_rec(
            "entity-based/wnp",
            report.shuffled_records(),
            MR_WORKERS.map(|w| report.modeled_nanos(w)),
        );
        let (_, report) = parallel::wep_with_report(&cleaned, WeightingScheme::Arcs, &engine);
        mr_rec(
            "entity-based/wep",
            report.shuffled_records(),
            MR_WORKERS.map(|w| report.modeled_nanos(w)),
        );
        // Same scheme as the other MapReduce rows so makespans compare
        // strategy cost, not weighting-scheme cost.
        let (_, report) = parallel::cep_with_report(&cleaned, WeightingScheme::Arcs, None, &engine);
        mr_rec(
            "entity-based/cep",
            report.shuffled_records(),
            MR_WORKERS.map(|w| report.modeled_nanos(w)),
        );
    }

    // Hand-rolled JSON (no serde_json in this offline workspace). Each
    // harness owns its sections of the shared file: this one writes
    // `results` + `mapreduce_results`, the `blockbuild` binary writes
    // `blockbuild_results`; merging keeps the other's rows intact.
    let mut results_rows = String::new();
    for (i, r) in records.iter().enumerate() {
        let throughput = r.edges as f64 / (r.nanos as f64 / 1e9);
        results_rows.push_str(&format!(
            "    {{\"world_entities\": {}, \"graph_edges\": {}, \"variant\": \"{}\", \
             \"nanos\": {}, \"edges_per_sec\": {:.0}}}{}\n",
            r.world,
            r.edges,
            r.variant,
            r.nanos,
            throughput,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    let mut mr_rows = String::new();
    for (i, r) in mr_records.iter().enumerate() {
        mr_rows.push_str(&format!(
            "    {{\"world_entities\": {}, \"graph_edges\": {}, \"strategy\": \"{}\", \
             \"shuffled_records\": {}, \"modeled_nanos_w1\": {}, \"modeled_nanos_w4\": {}, \
             \"modeled_nanos_w16\": {}}}{}\n",
            r.world,
            r.edges,
            r.strategy,
            r.shuffled_records,
            r.modeled_nanos[0],
            r.modeled_nanos[1],
            r.modeled_nanos[2],
            if i + 1 < mr_records.len() { "," } else { "" }
        ));
    }
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_metablocking.json");
    let written = minoan_bench::blockbuild::ensure_header(&path, threads)
        .and_then(|_| minoan_bench::blockbuild::merge_section(&path, "results", &results_rows))
        .and_then(|_| {
            minoan_bench::blockbuild::merge_section(&path, "mapreduce_results", &mr_rows)
        });
    if let Err(e) = written {
        eprintln!("could not write {}: {e}", path.display());
    } else {
        println!("wrote {}", path.display());
    }
}

criterion_group!(benches, bench_metablocking, bench_scaling);
criterion_main!(benches);
