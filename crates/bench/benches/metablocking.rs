//! Criterion benches for meta-blocking (supports E3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minoan_blocking::{builders, filter, purge, ErMode};
use minoan_datagen::{generate, profiles};
use minoan_metablocking::{prune, BlockingGraph, WeightingScheme};
use std::hint::black_box;

fn bench_metablocking(c: &mut Criterion) {
    let world = generate(&profiles::center_dense(400, 11));
    let blocks = builders::token_blocking(&world.dataset, ErMode::CleanClean);
    let cleaned = filter::filter(&purge::purge(&blocks).collection);

    let mut group = c.benchmark_group("metablocking");
    group.sample_size(10);
    group.bench_function("graph-build", |b| {
        b.iter(|| black_box(BlockingGraph::build(&cleaned)));
    });

    let graph = BlockingGraph::build(&cleaned);
    for scheme in WeightingScheme::ALL {
        group.bench_with_input(
            BenchmarkId::new("weights", scheme.name()),
            &scheme,
            |b, &s| b.iter(|| black_box(s.all_weights(&graph))),
        );
    }
    group.bench_function("wep/arcs", |b| {
        b.iter(|| black_box(prune::wep(&graph, WeightingScheme::Arcs)));
    });
    group.bench_function("wnp/arcs", |b| {
        b.iter(|| black_box(prune::wnp(&graph, WeightingScheme::Arcs, false)));
    });
    group.bench_function("cnp/js", |b| {
        b.iter(|| black_box(prune::cnp(&graph, WeightingScheme::Js, false, None)));
    });
    group.bench_function("cep/ecbs", |b| {
        b.iter(|| black_box(prune::cep(&graph, WeightingScheme::Ecbs, None)));
    });
    group.finish();
}

criterion_group!(benches, bench_metablocking);
criterion_main!(benches);
