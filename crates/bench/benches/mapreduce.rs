//! Criterion benches for the MapReduce substrate (supports E7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minoan_blocking::parallel::parallel_token_blocking;
use minoan_blocking::ErMode;
use minoan_datagen::{generate, profiles};
use minoan_mapreduce::Engine;
use minoan_metablocking::parallel::parallel_wep;
use minoan_metablocking::WeightingScheme;
use std::hint::black_box;

fn bench_mapreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapreduce");
    group.sample_size(10);

    // Raw engine throughput: word-count over synthetic documents.
    let docs: Vec<String> = (0..2_000)
        .map(|i| (0..30).map(|j| format!("w{} ", (i * j) % 500)).collect())
        .collect();
    for workers in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("word-count", workers),
            &workers,
            |b, &w| {
                let engine = Engine::new(w);
                b.iter(|| {
                    let r = engine.run(
                        docs.clone(),
                        |d, emit| {
                            for t in d.split_whitespace() {
                                emit(t.to_string(), 1u64);
                            }
                        },
                        |k, vs, out| out.push((k.clone(), vs.iter().sum::<u64>())),
                    );
                    black_box(r.output.len())
                });
            },
        );
    }

    // The real workloads: blocking and meta-blocking jobs.
    let world = generate(&profiles::center_dense(400, 5));
    for workers in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("token-blocking", workers),
            &workers,
            |b, &w| {
                let engine = Engine::new(w);
                b.iter(|| {
                    black_box(parallel_token_blocking(
                        &world.dataset,
                        ErMode::CleanClean,
                        &engine,
                    ))
                });
            },
        );
    }
    let blocks = parallel_token_blocking(&world.dataset, ErMode::CleanClean, &Engine::new(4));
    for workers in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("wep", workers), &workers, |b, &w| {
            let engine = Engine::new(w);
            b.iter(|| black_box(parallel_wep(&blocks, WeightingScheme::Arcs, &engine)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mapreduce);
criterion_main!(benches);
