//! Criterion benches for the progressive engine (supports E4/E5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minoan_blocking::{builders, filter, purge, ErMode};
use minoan_datagen::{generate, profiles};
use minoan_er::{
    BenefitModel, Matcher, MatcherConfig, Pipeline, PipelineConfig, ProgressiveResolver,
    ResolverConfig, Strategy,
};
use minoan_metablocking::{prune, BlockingGraph, WeightingScheme};
use minoan_rdf::EntityId;
use std::hint::black_box;

fn candidates(world: &minoan_datagen::GeneratedWorld) -> Vec<(EntityId, EntityId, f64)> {
    let blocks = builders::token_and_uri_blocking(&world.dataset, ErMode::CleanClean);
    let cleaned = filter::filter(&purge::purge(&blocks).collection);
    let graph = BlockingGraph::build(&cleaned);
    prune::wnp(&graph, WeightingScheme::Arcs, false)
        .pairs
        .into_iter()
        .map(|p| (p.a, p.b, p.weight))
        .collect()
}

fn bench_progressive(c: &mut Criterion) {
    let world = generate(&profiles::center_dense(300, 3));
    let pairs = candidates(&world);
    let mut group = c.benchmark_group("progressive");
    group.sample_size(10);

    group.bench_function("matcher-build", |b| {
        b.iter(|| black_box(Matcher::new(&world.dataset, MatcherConfig::default())));
    });

    let strategies = [
        ("batch", Strategy::Batch),
        ("static", Strategy::StaticBestFirst),
        (
            "progressive/pq",
            Strategy::Progressive(BenefitModel::PairQuantity),
        ),
        (
            "progressive/rel",
            Strategy::Progressive(BenefitModel::RelationshipCompleteness),
        ),
    ];
    for (label, strategy) in strategies {
        group.bench_with_input(BenchmarkId::new("resolve", label), &strategy, |b, &s| {
            b.iter(|| {
                let matcher = Matcher::new(&world.dataset, MatcherConfig::default());
                let resolver = ProgressiveResolver::new(
                    &world.dataset,
                    matcher,
                    ResolverConfig {
                        strategy: s,
                        ..Default::default()
                    },
                );
                black_box(resolver.run(&pairs))
            });
        });
    }

    group.bench_function("full-pipeline", |b| {
        b.iter(|| black_box(Pipeline::new(PipelineConfig::default()).run(&world.dataset)));
    });
    group.finish();
}

criterion_group!(benches, bench_progressive);
criterion_main!(benches);
