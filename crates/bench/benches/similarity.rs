//! Criterion benches for the similarity measures (matcher hot path).

use criterion::{criterion_group, criterion_main, Criterion};
use minoan_similarity::{jaro_winkler, levenshtein, qgram_similarity, token, TfIdfWeights};
use std::hint::black_box;

fn bench_similarity(c: &mut Criterion) {
    let mut group = c.benchmark_group("similarity");
    group.sample_size(20);

    // Token sets the size a description produces (~25 tokens).
    let a: Vec<u32> = (0..25).map(|i| i * 3).collect();
    let b: Vec<u32> = (0..25).map(|i| i * 4).collect();
    group.bench_function("jaccard/25", |bch| {
        bch.iter(|| black_box(token::jaccard(&a, &b)));
    });
    group.bench_function("weighted-jaccard/25", |bch| {
        bch.iter(|| black_box(token::weighted_jaccard(&a, &b, |t| 1.0 / (t + 1) as f64)));
    });
    let idf = TfIdfWeights::build(200, (0..100).map(|i| vec![i, i % 50, i % 25]));
    group.bench_function("tfidf-cosine/25", |bch| {
        bch.iter(|| black_box(idf.cosine(&a, &b)));
    });

    let s1 = "mikis theodorakis composer";
    let s2 = "m theodorakis greek composer";
    group.bench_function("levenshtein/26", |bch| {
        bch.iter(|| black_box(levenshtein(s1, s2)));
    });
    group.bench_function("jaro-winkler/26", |bch| {
        bch.iter(|| black_box(jaro_winkler(s1, s2)));
    });
    group.bench_function("bigram/26", |bch| {
        bch.iter(|| black_box(qgram_similarity(s1, s2, 2)));
    });
    group.finish();
}

criterion_group!(benches, bench_similarity);
criterion_main!(benches);
