//! Regenerates every experiment table and figure from EXPERIMENTS.md.
//!
//! Usage:
//! ```text
//! cargo run --release -p minoan-bench --bin reproduce [exp2|...|exp13|all] [--scale N] [--seed S]
//! ```

use minoan_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "all".to_string();
    let mut scale = experiments::DEFAULT_SCALE;
    let mut seed = 42u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a positive integer"));
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            other if other.starts_with("exp") || other == "all" => which = other.to_string(),
            other => die(&format!("unknown argument: {other}")),
        }
        i += 1;
    }

    let report = match which.as_str() {
        "exp2" => experiments::exp2_blocking(scale, seed),
        "exp3" => experiments::exp3_metablocking(scale, seed),
        "exp4" => experiments::exp4_progressive_recall(scale, seed),
        "exp5" => experiments::exp5_quality_dimensions(scale, seed),
        "exp6" => experiments::exp6_periphery(scale, seed),
        "exp7" => experiments::exp7_scalability(scale, seed),
        "exp8" => experiments::exp8_ablations(scale, seed),
        "exp9" => minoan_bench::experiments2::exp9_blocking_methods(scale, seed),
        "exp10" => minoan_bench::experiments2::exp10_metablocking_extensions(scale, seed),
        "exp11" => minoan_bench::experiments2::exp11_incremental(scale, seed),
        "exp12" => minoan_bench::experiments2::exp12_oracle_bounds(scale, seed),
        "exp13" => minoan_bench::experiments2::exp13_composite_rules(scale, seed),
        "exp14" => minoan_bench::experiments2::exp14_clustering(scale, seed),
        "exp15" => minoan_bench::experiments2::exp15_fault_tolerance(scale, seed),
        "exp16" => minoan_bench::experiments2::exp16_variance(scale, seed),
        "exp17" => minoan_bench::experiments2::exp17_corruption(scale, seed),
        "all" => experiments::run_all(scale, seed),
        other => die(&format!("unknown experiment: {other}")),
    };
    println!("{report}");
}

fn die(msg: &str) -> ! {
    eprintln!("reproduce: {msg}");
    eprintln!("usage: reproduce [exp2..exp8|all] [--scale N] [--seed S]");
    std::process::exit(2);
}
