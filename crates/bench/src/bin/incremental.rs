//! The `incremental` harness: sustained-arrival meta-blocking through the
//! updatable session vs. rebuilding from scratch per batch.
//!
//! * `--smoke` — small world, every batch's delta outcome re-verified
//!   bit-identical against a from-scratch session before anything is
//!   trusted; no file written. Wired into CI.
//! * `--calibrate [--entities N]` — sweeps the incremental resolver's
//!   per-arrival budgets and prints the quality/cost table the
//!   `IncrementalConfig::default` numbers are documented from.
//! * default — records delta vs full per-batch latency (p50/p99) into the
//!   `incremental` section of `BENCH_metablocking.json`. The world size
//!   and batch sizes can be overridden with `--entities N` and
//!   `--batch-sizes a,b,c`.

use minoan_bench::{blockbuild, incremental};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        incremental::smoke();
        return;
    }
    let entities = arg_after(&args, "--entities")
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000usize);
    if args.iter().any(|a| a == "--calibrate") {
        incremental::calibrate(entities);
        return;
    }
    let batch_sizes: Vec<usize> = arg_after(&args, "--batch-sizes")
        .map(|s| s.split(',').filter_map(|x| x.trim().parse().ok()).collect())
        .unwrap_or_else(|| vec![100, 1_000]);
    if batch_sizes.is_empty() {
        eprintln!("no batch sizes to run");
        std::process::exit(2);
    }

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "incremental harness: {entities} entities, batch sizes {batch_sizes:?}, {threads} threads"
    );
    let mut rows = Vec::new();
    for &batch_size in &batch_sizes {
        rows.extend(incremental::run_family(entities, batch_size, 8));
    }

    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_metablocking.json");
    blockbuild::ensure_header(&path, threads)
        .and_then(|_| {
            blockbuild::merge_section(
                &path,
                "incremental",
                &incremental::rows_json(&rows, threads),
            )
        })
        .unwrap_or_else(|e| {
            eprintln!("could not update {}: {e}", path.display());
            std::process::exit(1);
        });
    println!("wrote incremental section into {}", path.display());
}

fn arg_after<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}
