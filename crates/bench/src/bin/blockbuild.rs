//! The `blockbuild` harness: block build → purge → filter, flat CSR vs.
//! the pre-flat hash-map path, on identical worlds.
//!
//! * `--smoke` — one small world, outputs verified stage by stage, no file
//!   written; wired into CI so the flat path can't silently regress to a
//!   rebuild (or diverge from the legacy semantics).
//! * default — records the family at 50k and 200k entities into the
//!   `blockbuild_results` section of `BENCH_metablocking.json`, leaving
//!   the scaling harness's sections untouched. Sizes can be overridden
//!   with `--sizes a,b,c` or `MINOAN_BLOCKBUILD_SIZES`.

use minoan_bench::blockbuild;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let sizes: Vec<usize> = if smoke {
        vec![1_500]
    } else if let Some(i) = args.iter().position(|a| a == "--sizes") {
        parse_sizes(args.get(i + 1).map(String::as_str).unwrap_or(""))
    } else if let Ok(s) = std::env::var("MINOAN_BLOCKBUILD_SIZES") {
        parse_sizes(&s)
    } else {
        vec![50_000, 200_000]
    };
    if sizes.is_empty() {
        eprintln!("no sizes to run");
        std::process::exit(2);
    }

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "blockbuild harness: sizes {sizes:?}, {threads} threads{}",
        if smoke { " (smoke)" } else { "" }
    );
    // run_rows asserts legacy/flat output identity at every stage; a
    // mismatch aborts the process with a non-zero status.
    let rows = blockbuild::run_rows(&sizes, if smoke { 1 } else { 2 });

    if smoke {
        println!("blockbuild smoke: all stages bit-identical across paths — OK");
        return;
    }
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_metablocking.json");
    blockbuild::ensure_header(&path, threads)
        .and_then(|_| {
            blockbuild::merge_section(
                &path,
                "blockbuild_results",
                &blockbuild::rows_json(&rows, threads),
            )
        })
        .unwrap_or_else(|e| {
            eprintln!("could not update {}: {e}", path.display());
            std::process::exit(1);
        });
    println!("wrote blockbuild_results into {}", path.display());
}

fn parse_sizes(s: &str) -> Vec<usize> {
    s.split(',').filter_map(|x| x.trim().parse().ok()).collect()
}
