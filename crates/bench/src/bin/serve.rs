//! The `serve` harness: query-time resolution latency over the TCP
//! server, cached vs uncached, under concurrent ingest.
//!
//! * `--smoke` — small world, interleaved resolves/ingests, every served
//!   answer re-derived bit-identically from a fresh incremental session
//!   fed the same batch prefix; no file written. Wired into CI.
//! * default — records the cached vs uncached round-trip latency
//!   (p50/p99, qps, cache hit rate) into the `serve` section of
//!   `BENCH_metablocking.json`. Override with `--entities N`,
//!   `--requests N`, `--clients N`, `--cache N`.

use minoan_bench::{blockbuild, serve};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        serve::smoke();
        return;
    }
    let entities = arg_after(&args, "--entities")
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000usize);
    let requests = arg_after(&args, "--requests")
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000usize);
    let clients = arg_after(&args, "--clients")
        .and_then(|s| s.parse().ok())
        .unwrap_or(4usize);
    let cache = arg_after(&args, "--cache")
        .and_then(|s| s.parse().ok())
        .unwrap_or(4_096usize);

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "serve harness: {entities} entities, {requests} requests over {clients} clients, \
         cache {cache}, {threads} threads"
    );
    let rows = serve::run_family(entities, requests, clients, cache);

    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_metablocking.json");
    blockbuild::ensure_header(&path, threads)
        .and_then(|_| blockbuild::merge_section(&path, "serve", &serve::rows_json(&rows, threads)))
        .unwrap_or_else(|e| {
            eprintln!("could not update {}: {e}", path.display());
            std::process::exit(1);
        });
    println!("wrote serve section into {}", path.display());
}

fn arg_after<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}
