//! The `incremental` bench family: sustained-arrival meta-blocking through
//! the updatable [`IncrementalSession`] vs. rebuilding from scratch.
//!
//! Three costs are measured on the same arrival stream:
//!
//! * **delta** — `IncrementalSession::ingest` (slab delta-append +
//!   dirty-set delta-sweep, i.e. bringing the pruned state up to date) —
//!   timed for *every* batch, so the p50/p99 capture steady-state
//!   arrival latency;
//! * **delta-outcome** — the on-demand `outcome()` assembly of the
//!   pruned comparison set from the patched row cache, timed at sampled
//!   checkpoints (it is linear in the corpus' edge count, so running it
//!   per batch would make the harness quadratic for delta and full
//!   alike);
//! * **full** — what a non-updatable pipeline pays for the same
//!   freshness: re-run `token_blocking` over everything arrived so far
//!   and prune it with a from-scratch streaming [`Session`] — timed at
//!   the same checkpoints.
//!
//! The smoke mode re-asserts the delta path's bit-identity against the
//! from-scratch session on every batch before trusting any timing, and
//! the calibrate mode sweeps the incremental *resolver's* per-arrival
//! budgets (the numbers documented on `IncrementalConfig::default`).
//!
//! The workload is a periphery-style world whose type universe and token
//! vocabulary scale with the corpus and whose token-popularity curve is
//! flattened ([`bench_world`]): that keeps block sizes bounded as the
//! stream grows — the regime a block-purged corpus is in when
//! meta-blocking runs. With the generator's defaults (4 types, Zipf-1.0
//! vocabulary), the four `typeN` blocks each span a quarter of the
//! corpus and carry >99% of all edges; every batch then dirties nearly
//! everyone and *both* paths degenerate to sweeping those stop blocks —
//! measuring block purging's absence (the grow-only collection cannot
//! purge yet), not the delta path.

use minoan_blocking::{BlockCollection, ErMode, KeyAssignments};
use minoan_common::stats::percentile;
use minoan_datagen::{generate, profiles, ArrivalOrder};
use minoan_er::{IncrementalConfig, IncrementalResolver, Matcher, MatcherConfig};
use minoan_metablocking::{
    ExecutionBackend, IncrementalSession, Pruning, Session, WeightingScheme,
};
use minoan_rdf::tokenize::TokenBuffers;
use minoan_rdf::Dataset;
use std::hint::black_box;
use std::time::Instant;

/// The scheme × pruning pair the family is benched on: JS delta-sweeps
/// with the tight `batch ∪ grown` target set (ARCS would re-sweep every
/// member of every touched block; the unsupported schemes pay the `full`
/// variant's cost by falling back).
pub const BENCH_SCHEME: WeightingScheme = WeightingScheme::Js;
/// See [`BENCH_SCHEME`].
pub const BENCH_PRUNING: Pruning = Pruning::Wnp { reciprocal: false };

/// One measured variant of one configuration.
pub struct IncrementalRow {
    /// World size (entities parameter of the generator).
    pub world: usize,
    /// Descriptions in the generated corpus (what actually arrives).
    pub descriptions: usize,
    /// Arrival batch size.
    pub batch_size: usize,
    /// `delta` or `full`.
    pub variant: &'static str,
    /// Batches measured under this variant.
    pub samples: usize,
    /// Median per-batch latency.
    pub p50_nanos: u128,
    /// Tail per-batch latency.
    pub p99_nanos: u128,
    /// Wall clock across the measured batches.
    pub total_nanos: u128,
}

/// Runs the family. Every batch is timed through `ingest` (the
/// delta-sweep state update — the sustained per-arrival cost); at evenly
/// spaced checkpoints the on-demand `outcome()` assembly and the
/// full-rebuild reference are timed too (materialising the pruned set
/// per batch would make the harness itself quadratic, for delta and full
/// alike). Returns `[delta, delta-outcome, full]` rows; the headline
/// speedup is `full.p50 / delta.p50` — bringing the pruned state up to
/// date after a batch, incrementally vs from scratch — and the
/// `delta-outcome` row keeps the query-time assembly cost visible next
/// to it.
/// The benched arrival world: periphery KBs with a corpus-scaled type
/// universe and token vocabulary, so block sizes stay bounded as the
/// stream grows (see the module docs for why).
pub fn bench_world(world: usize) -> minoan_datagen::WorldConfig {
    let mut c = profiles::periphery_sparse(world, 11);
    // With the default 4 types, each `typeN` token blocks a quarter of
    // the corpus and those four blocks alone carry >99% of all edges —
    // the oversized blocks the pipeline's block-purge stage exists to
    // drop, which the grow-only incremental collection cannot (yet).
    // Fine-grained classes keep type blocks at ~50 members.
    c.num_types = (world / 50).max(4);
    c.vocab_tokens = (world * 8).max(2_000);
    c.zipf_exponent = 0.5;
    c
}

pub fn run_family(world: usize, batch_size: usize, checkpoints: usize) -> Vec<IncrementalRow> {
    let g = generate(&bench_world(world));
    let batches = ArrivalOrder::Shuffled { seed: 11 }.batches(&g.dataset, &g.truth, batch_size);
    let descriptions = g.dataset.len();
    println!(
        "incremental: world {world} ({descriptions} descriptions), batch size {batch_size}, \
         {} batches",
        batches.len()
    );
    let step = (batches.len() / checkpoints.max(1)).max(1);
    let at_checkpoint = |i: usize| (i + 1).is_multiple_of(step) || i + 1 == batches.len();

    // Delta path: every batch ingested (slab delta-append + dirty-set
    // delta-sweep); outcome assembled at the checkpoints.
    let mut session = IncrementalSession::new(&g.dataset, ErMode::CleanClean);
    session.scheme(BENCH_SCHEME).pruning(BENCH_PRUNING);
    let mut delta_nanos: Vec<f64> = Vec::with_capacity(batches.len());
    let mut outcome_nanos: Vec<f64> = Vec::new();
    let mut outcome_total = 0u128;
    let t_all = Instant::now();
    for (i, batch) in batches.iter().enumerate() {
        let t = Instant::now();
        let report = session.ingest(batch);
        delta_nanos.push(t.elapsed().as_nanos() as f64);
        assert!(report.delta, "bench combination must delta-sweep");
        if at_checkpoint(i) {
            println!(
                "  batch {:>5}: ingest {:>9.3} ms  (dirty {}, swept {} of {})",
                i + 1,
                delta_nanos[i] / 1e6,
                report.dirty_entities,
                report.swept_entities,
                report.num_arrived
            );
            let t = Instant::now();
            black_box(session.outcome());
            let n = t.elapsed().as_nanos();
            outcome_nanos.push(n as f64);
            outcome_total += n;
        }
    }
    let delta_total = t_all.elapsed().as_nanos() - outcome_total;

    // Full-rebuild reference at the same checkpoints: re-tokenise,
    // re-block and re-prune everything arrived up to that batch.
    let mut is_arrived = vec![false; descriptions];
    let mut full_nanos: Vec<f64> = Vec::new();
    let mut full_total = 0u128;
    for (i, batch) in batches.iter().enumerate() {
        for e in batch {
            is_arrived[e.index()] = true;
        }
        if !at_checkpoint(i) {
            continue;
        }
        let t = Instant::now();
        let blocks = arrived_token_blocking(&g.dataset, &is_arrived);
        black_box(
            Session::new(&blocks)
                .scheme(BENCH_SCHEME)
                .pruning(BENCH_PRUNING)
                .backend(ExecutionBackend::Streaming)
                .run(),
        );
        let n = t.elapsed().as_nanos();
        full_nanos.push(n as f64);
        full_total += n;
        println!(
            "  checkpoint {}/{}: full rebuild {:>10.3} ms",
            full_nanos.len(),
            batches.len().div_ceil(step),
            n as f64 / 1e6
        );
    }

    let row = |variant: &'static str, samples: &[f64], total: u128| IncrementalRow {
        world,
        descriptions,
        batch_size,
        variant,
        samples: samples.len(),
        p50_nanos: percentile(samples, 50.0) as u128,
        p99_nanos: percentile(samples, 99.0) as u128,
        total_nanos: total,
    };
    let rows = vec![
        row("delta", &delta_nanos, delta_total),
        row("delta-outcome", &outcome_nanos, outcome_total),
        row("full", &full_nanos, full_total),
    ];
    for r in &rows {
        println!(
            "  {:<14} p50 {:>10.3} ms  p99 {:>10.3} ms  ({} samples)",
            r.variant,
            r.p50_nanos as f64 / 1e6,
            r.p99_nanos as f64 / 1e6,
            r.samples
        );
    }
    println!(
        "  per-batch state-update speedup (full p50 / delta p50): {:.2}x; \
         sustained ingest {:.0} descriptions/s",
        rows[2].p50_nanos as f64 / rows[0].p50_nanos.max(1) as f64,
        descriptions as f64 / (delta_total as f64 / 1e9)
    );
    rows
}

/// Token blocking restricted to the arrived descriptions: empty key runs
/// for everything that has not arrived yet — the batch pipeline's view of
/// a partially arrived corpus.
fn arrived_token_blocking(dataset: &Dataset, arrived: &[bool]) -> BlockCollection {
    let mut asg = KeyAssignments::with_capacity(dataset.len());
    let mut buffers = TokenBuffers::default();
    for e in dataset.entities() {
        if arrived[e.index()] {
            dataset.for_each_blocking_token(e, &mut buffers, |tok| asg.push_key(tok));
        }
        asg.seal_entity();
    }
    BlockCollection::from_assignments(dataset, ErMode::CleanClean, asg)
}

/// Smoke gate: on a small world, every batch's delta outcome must be
/// bit-identical to a from-scratch session on the merged corpus, and the
/// delta path must actually engage. Panics on any divergence.
pub fn smoke() {
    let g = generate(&profiles::periphery_sparse(300, 11));
    let batches = ArrivalOrder::Shuffled { seed: 5 }.batches(&g.dataset, &g.truth, 31);
    let mut inc = IncrementalSession::new(&g.dataset, ErMode::CleanClean);
    inc.scheme(BENCH_SCHEME).pruning(BENCH_PRUNING);
    for (i, batch) in batches.iter().enumerate() {
        let report = inc.ingest(batch);
        assert!(report.delta, "batch {i}: delta path must engage");
        let got = inc.outcome();
        let snap = inc.snapshot().expect("snapshot after ingest");
        let want = Session::new(snap)
            .scheme(BENCH_SCHEME)
            .pruning(BENCH_PRUNING)
            .backend(ExecutionBackend::Streaming)
            .run();
        assert_eq!(
            got.pruned.input_edges, want.pruned.input_edges,
            "batch {i}: input edges"
        );
        assert_eq!(
            got.pruned.pairs.len(),
            want.pruned.pairs.len(),
            "batch {i}: kept count"
        );
        for (x, y) in got.pruned.pairs.iter().zip(&want.pruned.pairs) {
            assert_eq!((x.a, x.b), (y.a, y.b), "batch {i}: pair order");
            assert_eq!(
                x.weight.to_bits(),
                y.weight.to_bits(),
                "batch {i}: weight bits of ({:?},{:?})",
                x.a,
                x.b
            );
        }
    }
    println!(
        "incremental smoke: {} batches delta-swept bit-identically — OK",
        batches.len()
    );
}

/// One calibration measurement: quality and cost of the incremental
/// *resolver* under a (budget, candidates) configuration.
pub struct CalibrationRow {
    /// Per-arrival comparison budget.
    pub budget: u64,
    /// Candidate pool size.
    pub candidates: usize,
    /// Match precision against ground truth.
    pub precision: f64,
    /// Match recall against ground truth.
    pub recall: f64,
    /// Total comparisons executed over the stream.
    pub comparisons: u64,
}

/// Sweeps the resolver's per-arrival budgets on one world — the run the
/// `IncrementalConfig::default` numbers are documented from.
pub fn calibrate(world: usize) -> Vec<CalibrationRow> {
    let g = generate(&profiles::center_dense(world, 11));
    let order = ArrivalOrder::Shuffled { seed: 11 }.order(&g.dataset, &g.truth);
    let matcher = Matcher::new(&g.dataset, MatcherConfig::default());
    let truth_pairs = g.truth.matching_pairs() as f64;
    let mut rows = Vec::new();
    println!(
        "calibration world: {world} entities, {} descriptions",
        g.dataset.len()
    );
    println!(
        "{:>8} {:>10} {:>10} {:>8} {:>12}",
        "budget", "candidates", "precision", "recall", "comparisons"
    );
    for budget in [2u64, 4, 10, 16] {
        for candidates in [8usize, 24, 64] {
            let config = IncrementalConfig {
                budget_per_arrival: budget,
                max_candidates: candidates,
                ..Default::default()
            };
            let mut inc = IncrementalResolver::new(&g.dataset, &matcher, config);
            inc.arrive_all(order.iter().copied());
            let matches = inc.matches();
            let tp = matches
                .iter()
                .filter(|(a, b, _)| g.truth.is_match(*a, *b))
                .count() as f64;
            let row = CalibrationRow {
                budget,
                candidates,
                precision: if matches.is_empty() {
                    0.0
                } else {
                    tp / matches.len() as f64
                },
                recall: tp / truth_pairs,
                comparisons: inc.comparisons(),
            };
            println!(
                "{:>8} {:>10} {:>10.3} {:>8.3} {:>12}",
                row.budget, row.candidates, row.precision, row.recall, row.comparisons
            );
            rows.push(row);
        }
    }
    rows
}

/// Formats delta/full row pairs as the `incremental` JSON section body.
pub fn rows_json(rows: &[IncrementalRow], threads: usize) -> String {
    let mut out = String::new();
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"world_entities\": {}, \"descriptions\": {}, \"batch_size\": {}, \
             \"variant\": \"{}\", \"samples\": {}, \"p50_nanos\": {}, \"p99_nanos\": {}, \
             \"total_nanos\": {}, \"threads\": {}}}{}\n",
            r.world,
            r.descriptions,
            r.batch_size,
            r.variant,
            r.samples,
            r.p50_nanos,
            r.p99_nanos,
            r.total_nanos,
            threads,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_asserts_bit_identity() {
        smoke();
    }

    #[test]
    fn run_family_times_all_variants() {
        let rows = run_family(250, 19, 3);
        let [delta, outcome, full] = rows.as_slice() else {
            panic!("expected 3 rows, got {}", rows.len());
        };
        assert_eq!(delta.variant, "delta");
        assert_eq!(outcome.variant, "delta-outcome");
        assert_eq!(full.variant, "full");
        assert!(delta.samples > full.samples);
        assert_eq!(outcome.samples, full.samples);
        assert!(delta.p50_nanos > 0 && full.p50_nanos > 0);
        assert!(delta.p99_nanos >= delta.p50_nanos);
    }
}
