//! The `blockbuild` bench family: block **build → purge → filter** on the
//! flat CSR collection vs. the pre-flat path.
//!
//! Two implementations of each stage are timed on identical worlds:
//!
//! * **legacy** — owned token `String`s grouped through a
//!   `FxHashMap<String, Vec<EntityId>>` plus the owned-`Vec` rebuild
//!   passes (`legacy_purge_with` / `legacy_filter_with`) — the shape the
//!   collection layer had before the flat slabs;
//! * **flat** — the string-free symbol build
//!   (`BlockCollection::from_assignments` via `builders::token_blocking`)
//!   and the mask + id-remap `purge`/`filter` index passes.
//!
//! Besides timing, [`run_rows`] *verifies* the two paths produce
//! identical collections at every stage, so wiring the `--smoke` mode
//! into CI keeps the flat path honest: a silent regression to rebuild
//! semantics (or a divergence in output) fails the run.

use minoan_blocking::{builders, filter, purge, BlockCollection, ErMode};
use minoan_common::FxHashMap;
use minoan_datagen::{generate, profiles};
use minoan_rdf::EntityId;
use std::hint::black_box;
use std::path::Path;
use std::time::Instant;

/// One timed stage on one world.
pub struct BlockbuildRow {
    /// World size (entities).
    pub world: usize,
    /// Blocks in the raw token-blocking collection.
    pub blocks: usize,
    /// Block assignments (BC) in the raw collection.
    pub assignments: u64,
    /// Stage/variant label, e.g. `build/flat-symbolic`.
    pub variant: &'static str,
    /// Best-of-reps wall clock.
    pub nanos: u128,
}

fn time<R>(mut f: impl FnMut() -> R, reps: u32) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed().as_nanos());
    }
    best
}

/// The pre-flat token-blocking builder: one owned `String` per token
/// occurrence, hash-map grouping, then the string-keyed `from_groups`.
/// Shared with the `blocking_layout` property suite as the reference
/// (legacy) build the string-free path is pinned against.
pub fn reference_token_blocking(dataset: &minoan_rdf::Dataset, mode: ErMode) -> BlockCollection {
    BlockCollection::from_groups(dataset, mode, reference_token_groups(dataset, false))
}

/// As [`reference_token_blocking`] for the paper's token ∪ URI-infix
/// criterion (`uri:`-prefixed key space, like `token_and_uri_blocking`).
pub fn reference_token_and_uri_blocking(
    dataset: &minoan_rdf::Dataset,
    mode: ErMode,
) -> BlockCollection {
    BlockCollection::from_groups(dataset, mode, reference_token_groups(dataset, true))
}

fn reference_token_groups(
    dataset: &minoan_rdf::Dataset,
    with_uri: bool,
) -> FxHashMap<String, Vec<EntityId>> {
    let mut groups: FxHashMap<String, Vec<EntityId>> = FxHashMap::default();
    for e in dataset.entities() {
        let mut tokens: Vec<String> = dataset.blocking_tokens(e);
        tokens.sort_unstable();
        tokens.dedup();
        for t in tokens {
            groups.entry(t).or_default().push(e);
        }
        if with_uri {
            let mut utoks = minoan_rdf::tokenize::uri_infix_tokens(dataset.uri(e));
            utoks.sort_unstable();
            utoks.dedup();
            for t in utoks {
                groups.entry(format!("uri:{t}")).or_default().push(e);
            }
        }
    }
    groups
}

/// Panics unless `a` and `b` are observably identical collections.
pub fn assert_collections_identical(a: &BlockCollection, b: &BlockCollection, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: block count");
    assert_eq!(
        a.total_comparisons(),
        b.total_comparisons(),
        "{what}: comparisons"
    );
    assert_eq!(
        a.total_assignments(),
        b.total_assignments(),
        "{what}: assignments"
    );
    for (x, y) in a.blocks().zip(b.blocks()) {
        assert_eq!(
            a.key_str(x.id),
            b.key_str(y.id),
            "{what}: key of {:?}",
            x.id
        );
        assert_eq!(x.entities, y.entities, "{what}: members of {:?}", x.id);
        assert_eq!(
            x.comparisons, y.comparisons,
            "{what}: comparisons of {:?}",
            x.id
        );
        assert_eq!(
            a.inv_cardinality(x.id).to_bits(),
            b.inv_cardinality(y.id).to_bits(),
            "{what}: 1/‖{:?}‖ bits",
            x.id
        );
    }
    assert_eq!(a.num_entities(), b.num_entities(), "{what}: entities");
    for e in 0..a.num_entities() as u32 {
        assert_eq!(
            a.entity_blocks(EntityId(e)),
            b.entity_blocks(EntityId(e)),
            "{what}: entity_blocks({e})"
        );
    }
}

/// Runs the family at the given world sizes. Every stage's legacy and
/// flat outputs are asserted identical before the timings are trusted.
pub fn run_rows(sizes: &[usize], reps: u32) -> Vec<BlockbuildRow> {
    let mut rows = Vec::new();
    for &n in sizes {
        println!("blockbuild: world {n} entities");
        let world = generate(&profiles::center_dense(n, 11));
        let ds = &world.dataset;

        let flat = builders::token_blocking(ds, ErMode::CleanClean);
        let legacy = reference_token_blocking(ds, ErMode::CleanClean);
        assert_collections_identical(&flat, &legacy, "build");
        let blocks = flat.len();
        let assignments = flat.total_assignments();

        let mut rec = |variant: &'static str, nanos: u128| {
            println!("  {variant:<24} {:>10.2} ms", nanos as f64 / 1e6);
            rows.push(BlockbuildRow {
                world: n,
                blocks,
                assignments,
                variant,
                nanos,
            });
        };

        rec(
            "build/legacy-hashmap",
            time(|| reference_token_blocking(ds, ErMode::CleanClean), reps),
        );
        rec(
            "build/flat-symbolic",
            time(|| builders::token_blocking(ds, ErMode::CleanClean), reps),
        );

        let purged_flat = purge::purge(&flat).collection;
        let purged_legacy = purge::legacy_purge_with(&flat, purge::DEFAULT_SMOOTHING).collection;
        assert_collections_identical(&purged_flat, &purged_legacy, "purge");
        rec(
            "purge/legacy-rebuild",
            time(
                || purge::legacy_purge_with(&flat, purge::DEFAULT_SMOOTHING),
                reps,
            ),
        );
        rec("purge/flat-mask", time(|| purge::purge(&flat), reps));

        let filtered_flat = filter::filter(&purged_flat);
        let filtered_legacy = filter::legacy_filter_with(&purged_flat, filter::DEFAULT_RATIO);
        assert_collections_identical(&filtered_flat, &filtered_legacy, "filter");
        rec(
            "filter/legacy-rebuild",
            time(
                || filter::legacy_filter_with(&purged_flat, filter::DEFAULT_RATIO),
                reps,
            ),
        );
        rec(
            "filter/flat-mask",
            time(|| filter::filter(&purged_flat), reps),
        );

        // End-to-end: the paper's block building + cleaning pipeline.
        rec(
            "clean/legacy-total",
            time(
                || {
                    let c = reference_token_blocking(ds, ErMode::CleanClean);
                    let p = purge::legacy_purge_with(&c, purge::DEFAULT_SMOOTHING).collection;
                    filter::legacy_filter_with(&p, filter::DEFAULT_RATIO)
                },
                reps,
            ),
        );
        rec(
            "clean/flat-total",
            time(
                || {
                    let c = builders::token_blocking(ds, ErMode::CleanClean);
                    let p = purge::purge(&c).collection;
                    filter::filter(&p)
                },
                reps,
            ),
        );

        let nanos_of = |variant: &str| {
            rows.iter()
                .find(|r| r.world == n && r.variant == variant)
                .map(|r| r.nanos)
                .unwrap_or(0)
        };
        let legacy_total = nanos_of("clean/legacy-total");
        let flat_total = nanos_of("clean/flat-total");
        if flat_total > 0 {
            println!(
                "  end-to-end speedup: {:.2}x",
                legacy_total as f64 / flat_total as f64
            );
        }
    }
    rows
}

/// Formats rows as the `blockbuild_results` JSON section body.
pub fn rows_json(rows: &[BlockbuildRow], threads: usize) -> String {
    let mut out = String::new();
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"world_entities\": {}, \"blocks\": {}, \"assignments\": {}, \
             \"variant\": \"{}\", \"nanos\": {}, \"threads\": {}}}{}\n",
            r.world,
            r.blocks,
            r.assignments,
            r.variant,
            r.nanos,
            threads,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out
}

/// Creates the benchmark JSON skeleton if `path` does not exist yet, and
/// refreshes its top-level `"threads"` count if it does.
pub fn ensure_header(path: &Path, threads: usize) -> std::io::Result<()> {
    match std::fs::read_to_string(path) {
        Ok(existing) => {
            // Refresh `"threads": N` in place, if present.
            if let Some(pos) = existing.find("\"threads\":") {
                let val_start = pos + "\"threads\":".len();
                let rest = &existing[val_start..];
                let val_len = rest.find([',', '\n', '}']).unwrap_or(0);
                let updated = format!(
                    "{} {}{}",
                    &existing[..val_start],
                    threads,
                    &existing[val_start + val_len..]
                );
                std::fs::write(path, updated)?;
            }
            Ok(())
        }
        Err(_) => std::fs::write(
            path,
            format!("{{\n  \"bench\": \"metablocking build-vs-stream\",\n  \"threads\": {threads}\n}}\n"),
        ),
    }
}

/// Replaces (or inserts) the top-level array section `"key": [...]` of the
/// hand-rolled benchmark JSON at `path`, leaving every other section
/// untouched — so the criterion scaling harness and the `blockbuild`
/// binary each own their sections without clobbering the other's rows.
///
/// The file format is the one this workspace writes (no `[`/`]` inside
/// string values), which is all the bracket-depth scan assumes.
pub fn merge_section(path: &Path, key: &str, section_rows: &str) -> std::io::Result<()> {
    let existing = std::fs::read_to_string(path).unwrap_or_else(|_| String::from("{\n}\n"));
    let section = format!("  \"{key}\": [\n{section_rows}  ]");
    let marker = format!("\"{key}\"");
    let merged = if let Some(pos) = existing.find(&marker) {
        let line_start = existing[..pos].rfind('\n').map(|i| i + 1).unwrap_or(0);
        let open = existing[pos..]
            .find('[')
            .map(|i| pos + i)
            .expect("existing section must be a JSON array");
        let mut depth = 0usize;
        let mut close = None;
        for (i, ch) in existing[open..].char_indices() {
            match ch {
                '[' => depth += 1,
                ']' => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(open + i);
                        break;
                    }
                }
                _ => {}
            }
        }
        let close = close.expect("unbalanced array in benchmark JSON");
        format!(
            "{}{}{}",
            &existing[..line_start],
            section,
            &existing[close + 1..]
        )
    } else {
        let brace = existing.rfind('}').expect("top-level JSON object");
        let head = existing[..brace].trim_end();
        let sep = if head.ends_with('{') { "\n" } else { ",\n" };
        format!("{head}{sep}{section}\n}}\n")
    };
    std::fs::write(path, merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_inserts_then_replaces_and_preserves_others() {
        let dir = std::env::temp_dir().join("minoan_blockbuild_merge_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("bench.json");
        let _ = std::fs::remove_file(&path);

        ensure_header(&path, 4).unwrap();
        merge_section(&path, "results", "    {\"a\": [1, 2]}\n").unwrap();
        merge_section(&path, "blockbuild_results", "    {\"b\": 1}\n").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"threads\": 4"));
        assert!(text.contains("\"results\": ["));
        assert!(text.contains("\"blockbuild_results\": ["));

        // Replacing one section keeps the other's rows (nested brackets
        // in the replaced section must not confuse the scan).
        merge_section(&path, "results", "    {\"a\": [9]}\n").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("{\"a\": [9]}"));
        assert!(!text.contains("[1, 2]"));
        assert!(text.contains("{\"b\": 1}"));
        // Still exactly one of each key (the quoted marker does not match
        // inside "blockbuild_results").
        assert_eq!(text.matches("\"results\"").count(), 1);
        assert_eq!(text.matches("\"blockbuild_results\"").count(), 1);

        ensure_header(&path, 8).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"threads\": 8"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn smoke_family_verifies_and_times() {
        let rows = run_rows(&[600], 1);
        // 8 variants on one world.
        assert_eq!(rows.len(), 8);
        assert!(rows.iter().all(|r| r.nanos > 0));
    }
}
