//! The E9–E13 extension experiments (see EXPERIMENTS.md).
//!
//! These cover the subsystems added on top of the original E2–E8 set: the
//! advanced blocker families, BLAST and supervised meta-blocking, the
//! incremental resolver, the oracle scheduling bounds, and the composite
//! matching rules.

use minoan_blocking::{CanopyConfig, ErMode, LshConfig, Method};
use minoan_datagen::{generate, profiles, ArrivalOrder, GeneratedWorld};
use minoan_er::{
    oracle, BenefitModel, CompositeConfig, CompositeResolver, IncrementalConfig,
    IncrementalResolver, Matcher, MatcherConfig, ProgressiveResolver, ResolverConfig, Rule,
    Strategy,
};
use minoan_eval::report::fmt3;
use minoan_eval::{metrics, plot, Table};
use minoan_metablocking::{
    blast, FeatureExtractor, Perceptron, Pruning, Session, TrainingSet, WeightingScheme,
};
use minoan_rdf::EntityId;
use std::fmt::Write as _;

fn pair_quality(world: &GeneratedWorld, pairs: &[(EntityId, EntityId)]) -> (f64, f64) {
    let found = pairs
        .iter()
        .filter(|&&(a, b)| world.truth.is_match(a, b))
        .count();
    let pc = found as f64 / world.truth.matching_pairs() as f64;
    let pq = if pairs.is_empty() {
        0.0
    } else {
        found as f64 / pairs.len() as f64
    };
    (pc, pq)
}

/// E9 — advanced blocking methods across regimes (Table).
///
/// Claim exercised: exact token blocking suffices in the centre, but the
/// fuzzy families (q-grams, LSH, sorted neighborhood, canopy) recover
/// matches on noisy periphery data, at higher comparison cost — the
/// trade-off meta-blocking and progressive scheduling then manage.
pub fn exp9_blocking_methods(scale: usize, seed: u64) -> String {
    let mut out = String::new();
    let methods: Vec<(&str, Method)> = vec![
        ("token", Method::Token),
        ("token+uri", Method::TokenAndUri),
        ("attr-cluster", Method::AttributeClustering(0.3)),
        ("qgrams(3)", Method::QGrams(3)),
        ("ext-qgrams(3,.8)", Method::ExtendedQGrams(3, 0.8)),
        ("snm(6)", Method::SortedNeighborhood(6)),
        ("adaptive-snm", Method::AdaptiveSortedNeighborhood(4, 32)),
        ("minhash-lsh", Method::MinHashLsh(LshConfig::default())),
        ("canopy", Method::Canopy(CanopyConfig::default())),
    ];
    for profile in ["center", "periphery", "typo-noisy"] {
        let cfg = match profile {
            "center" => profiles::center_dense(scale, seed),
            "typo-noisy" => profiles::typo_noisy(scale, seed),
            _ => profiles::periphery_sparse(scale, seed),
        };
        let world = generate(&cfg);
        // Raw collections are dominated by mega-blocks (type tokens) that
        // make PC trivially 1; measure after the standard purge + filter
        // cleaning, where the key spaces actually differ.
        let mut table = Table::new(vec!["method", "blocks", "comparisons", "PC", "PQ"]);
        for (name, method) in &methods {
            let raw = method.run(&world.dataset, ErMode::CleanClean);
            let blocks =
                minoan_blocking::filter::filter(&minoan_blocking::purge::purge(&raw).collection);
            let pairs = blocks.distinct_pairs();
            let (pc, pq) = pair_quality(&world, &pairs);
            table.row(vec![
                name.to_string(),
                blocks.len().to_string(),
                blocks.total_comparisons().to_string(),
                fmt3(pc),
                fmt3(pq),
            ]);
        }
        let _ = writeln!(out, "profile = {profile} (after purge + filter)\n{table}");
    }
    out
}

/// E10 — meta-blocking extensions (Table).
///
/// Claim exercised: χ²-weighted BLAST pruning and the supervised
/// feature-vector pruner retain fewer comparisons at equal-or-better match
/// coverage than the unsupervised single-scheme pruners.
pub fn exp10_metablocking_extensions(scale: usize, seed: u64) -> String {
    let world = generate(&profiles::center_periphery(scale, seed));
    let blocks =
        minoan_blocking::builders::token_and_uri_blocking(&world.dataset, ErMode::CleanClean);
    let cleaned =
        minoan_blocking::filter::filter(&minoan_blocking::purge::purge(&blocks).collection);
    // One session drives the whole pruner column — the graph (and, for
    // the supervised row, the feature slab) is built once.
    let mut session = Session::new(&cleaned);
    let num_edges = session.graph().num_edges();

    // The supervised model still trains on the session's graph.
    let model = {
        let graph = session.graph();
        let extractor = FeatureExtractor::fit(graph);
        let train = TrainingSet::sample(
            graph,
            &extractor,
            |a, b| world.truth.is_match(a, b),
            50,
            seed,
        );
        Perceptron::train(&train, 15)
    };

    let mut table = Table::new(vec!["pruner", "kept", "retention", "PC", "PQ"]);
    let mut rows: Vec<(String, Pruning, WeightingScheme)> = vec![(
        "none (all edges)".into(),
        Pruning::None,
        WeightingScheme::Arcs,
    )];
    for scheme in [WeightingScheme::Cbs, WeightingScheme::Arcs] {
        rows.push((format!("WEP/{}", scheme.name()), Pruning::Wep, scheme));
        rows.push((
            format!("WNP/{}", scheme.name()),
            Pruning::Wnp { reciprocal: false },
            scheme,
        ));
    }
    rows.push((
        "BLAST(chi2)".into(),
        Pruning::Blast {
            ratio: blast::DEFAULT_RATIO,
        },
        WeightingScheme::Arcs,
    ));
    rows.push((
        "supervised(50/class)".into(),
        Pruning::Supervised(model),
        WeightingScheme::Arcs,
    ));

    for (name, pruning, scheme) in rows {
        let out = session.scheme(scheme).pruning(pruning).run();
        let pairs: Vec<(EntityId, EntityId)> = out.pairs().iter().map(|p| (p.a, p.b)).collect();
        let (pc, pq) = pair_quality(&world, &pairs);
        table.row(vec![
            name,
            pairs.len().to_string(),
            fmt3(pairs.len() as f64 / num_edges.max(1) as f64),
            fmt3(pc),
            fmt3(pq),
        ]);
    }

    format!("{table}")
}

/// E11 — incremental resolution across arrival orders (Table).
///
/// Claim exercised: the pay-as-you-go platform sustains batch-level
/// quality when descriptions arrive as a stream, with bounded per-arrival
/// work, across realistic arrival shapes.
pub fn exp11_incremental(scale: usize, seed: u64) -> String {
    let world = generate(&profiles::center_dense(scale, seed));
    let matcher = Matcher::new(&world.dataset, MatcherConfig::default());
    let mut table = Table::new(vec![
        "arrival order",
        "comparisons",
        "precision",
        "recall",
        "clusters",
    ]);
    for order in ArrivalOrder::all(seed) {
        let mut resolver =
            IncrementalResolver::new(&world.dataset, &matcher, IncrementalConfig::default());
        resolver.arrive_all(order.order(&world.dataset, &world.truth));
        let pairs: Vec<_> = resolver.matches().iter().map(|&(a, b, _)| (a, b)).collect();
        let q = metrics::match_quality(&world.truth, &pairs);
        table.row(vec![
            order.name().to_string(),
            resolver.comparisons().to_string(),
            fmt3(q.precision),
            fmt3(q.recall),
            resolver.clusters().len().to_string(),
        ]);
    }
    // Batch reference: full progressive pipeline over the same data.
    let pairs = super::experiments::candidate_pairs_public(&world, ErMode::CleanClean);
    let res = ProgressiveResolver::new(
        &world.dataset,
        Matcher::new(&world.dataset, MatcherConfig::default()),
        ResolverConfig::default(),
    )
    .run(&pairs);
    let q = metrics::resolution_quality(&world.truth, &res);
    table.row(vec![
        "batch reference".to_string(),
        res.comparisons.to_string(),
        fmt3(q.precision),
        fmt3(q.recall),
        res.clusters.len().to_string(),
    ]);
    format!("{table}")
}

/// E12 — scheduling headroom against oracle bounds (Figure).
///
/// Claim exercised: the progressive scheduler extracts most of the recall
/// an oracle-decided perfect schedule could, far ahead of input-order
/// scheduling — quantifying how much of the pay-as-you-go benefit comes
/// from *ordering* alone.
pub fn exp12_oracle_bounds(scale: usize, seed: u64) -> String {
    let world = generate(&profiles::center_dense(scale, seed));
    let pairs = super::experiments::candidate_pairs_public(&world, ErMode::CleanClean);
    let truth = &world.truth;

    // Oracle-decided traces. The candidate list arrives sorted by
    // meta-blocking weight, so the naive baseline is a deterministic
    // shuffle (arbitrary order), not the list as-is.
    let perfect = oracle::perfect_trace(&pairs, |a, b| truth.is_match(a, b), u64::MAX);
    let mut arbitrary = pairs.clone();
    {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xe12);
        arbitrary.shuffle(&mut rng);
    }
    let input_order = oracle::oracle_trace(&arbitrary, |a, b| truth.is_match(a, b), u64::MAX);
    let mut by_weight = pairs.clone();
    by_weight.sort_by(|x, y| {
        y.2.partial_cmp(&x.2)
            .expect("finite")
            .then((x.0, x.1).cmp(&(y.0, y.1)))
    });
    let weight_order = oracle::oracle_trace(&by_weight, |a, b| truth.is_match(a, b), u64::MAX);

    // The real progressive engine (matcher decisions, not oracle).
    let res = ProgressiveResolver::new(
        &world.dataset,
        Matcher::new(&world.dataset, MatcherConfig::default()),
        ResolverConfig {
            strategy: Strategy::Progressive(BenefitModel::PairQuantity),
            ..Default::default()
        },
    )
    .run(&pairs);

    let total_true = truth.matching_pairs() as f64;
    let curve = |trace: &minoan_er::Trace| -> Vec<(f64, f64)> {
        let mut pts = Vec::new();
        let mut found = 0u64;
        for s in trace.steps() {
            if s.matched {
                found += 1;
            }
            if s.comparison % 25 == 0 || s.comparison == trace.comparisons() {
                pts.push((s.comparison as f64, found as f64 / total_true));
            }
        }
        pts
    };

    let series = vec![
        plot::Series::new("perfect oracle", curve(&perfect)),
        plot::Series::new("weight-order oracle", curve(&weight_order)),
        plot::Series::new("arbitrary-order oracle", curve(&input_order)),
        plot::Series::new("progressive (real matcher)", curve(&res.trace)),
    ];
    let mut out = plot::render_plot(&series, 64, 16, 1.0);
    for budget_frac in [0.1, 0.25, 0.5] {
        let budget = (pairs.len() as f64 * budget_frac) as u64;
        let eff_weight = oracle::schedule_efficiency(&weight_order, &perfect, budget);
        let eff_input = oracle::schedule_efficiency(&input_order, &perfect, budget);
        let eff_real = oracle::schedule_efficiency(&res.trace, &perfect, budget);
        let _ = writeln!(
            out,
            "budget {:>3.0}%: efficiency weight-order {} | arbitrary-order {} | progressive {}",
            budget_frac * 100.0,
            fmt3(eff_weight),
            fmt3(eff_input),
            fmt3(eff_real)
        );
    }
    out
}

/// E13 — composite matching rules (Table).
///
/// Claim exercised: reciprocity-based rules reach threshold-matcher
/// precision without per-dataset threshold tuning, and each rule
/// contributes distinct matches.
pub fn exp13_composite_rules(scale: usize, seed: u64) -> String {
    let mut out = String::new();
    for profile in ["center", "periphery", "typo-noisy"] {
        let cfg = match profile {
            "center" => profiles::center_dense(scale, seed),
            "typo-noisy" => profiles::typo_noisy(scale, seed),
            _ => profiles::periphery_sparse(scale, seed),
        };
        let world = generate(&cfg);
        let pairs = super::experiments::candidate_pairs_public(&world, ErMode::CleanClean);
        let matcher = Matcher::new(&world.dataset, MatcherConfig::default());
        let res = CompositeResolver::new(&world.dataset, &matcher, CompositeConfig::default())
            .run(&pairs);
        let mut table = Table::new(vec!["rule", "matches", "precision"]);
        for rule in [
            Rule::NameReciprocity,
            Rule::ValueReciprocity,
            Rule::RankAggregation,
        ] {
            let ms: Vec<_> = res.by_rule(rule).collect();
            let tp = ms.iter().filter(|m| world.truth.is_match(m.a, m.b)).count();
            let precision = if ms.is_empty() {
                0.0
            } else {
                tp as f64 / ms.len() as f64
            };
            table.row(vec![
                rule.name().to_string(),
                ms.len().to_string(),
                fmt3(precision),
            ]);
        }
        let all: Vec<_> = res.matches.iter().map(|m| (m.a, m.b)).collect();
        let q = metrics::match_quality(&world.truth, &all);
        table.row(vec![
            "ALL RULES".to_string(),
            all.len().to_string(),
            fmt3(q.precision),
        ]);
        // Threshold-matcher reference.
        let reference = ProgressiveResolver::new(
            &world.dataset,
            Matcher::new(&world.dataset, MatcherConfig::default()),
            ResolverConfig::default(),
        )
        .run(&pairs);
        let qr = metrics::resolution_quality(&world.truth, &reference);
        table.row(vec![
            "threshold matcher".to_string(),
            reference.matches.len().to_string(),
            fmt3(qr.precision),
        ]);
        let _ = writeln!(
            out,
            "profile = {profile} (recall: rules {} vs threshold {})\n{table}",
            fmt3(q.recall),
            fmt3(qr.recall)
        );
    }
    out
}

/// E14 — clustering algorithms over the same match set (Table).
///
/// Claim exercised: transitive closure over-merges as matcher precision
/// drops; the center-based algorithms and unique mapping keep cluster
/// quality (B-cubed, VI) higher at equal input.
pub fn exp14_clustering(scale: usize, seed: u64) -> String {
    use minoan_er::clustering::ClusteringAlgorithm;
    let mut out = String::new();
    for (label, threshold) in [
        ("precise matcher (t=0.55)", 0.55),
        ("noisy matcher (t=0.30)", 0.30),
    ] {
        let world = generate(&profiles::center_dense(scale, seed));
        let pairs = super::experiments::candidate_pairs_public(&world, ErMode::CleanClean);
        let mut mconfig = MatcherConfig::default();
        mconfig.threshold = threshold;
        mconfig.value_floor = mconfig.value_floor.min(threshold);
        let res = ProgressiveResolver::new(
            &world.dataset,
            Matcher::new(&world.dataset, mconfig),
            ResolverConfig::default(),
        )
        .run(&pairs);
        let truth_clusters: Vec<Vec<u32>> = world
            .truth
            .clusters()
            .iter()
            .filter(|c| c.len() >= 2)
            .map(|c| c.iter().map(|e| e.0).collect())
            .collect();
        let mut table = Table::new(vec![
            "algorithm",
            "clusters",
            "pairwise F1",
            "b-cubed F1",
            "VI",
        ]);
        for alg in ClusteringAlgorithm::ALL {
            let clusters = alg.run(world.dataset.len(), &res.matches, |e| {
                world.dataset.kb_of(e).0
            });
            let q = minoan_eval::cluster_quality(world.dataset.len(), &clusters, &truth_clusters);
            table.row(vec![
                alg.name().to_string(),
                clusters.len().to_string(),
                fmt3(q.pairwise.f1),
                fmt3(q.bcubed.f1),
                fmt3(q.vi),
            ]);
        }
        let _ = writeln!(
            out,
            "{label}, {} accepted matches\n{table}",
            res.matches.len()
        );
    }
    out
}

/// E15 — cluster fault tolerance of the parallel jobs (Table).
///
/// Claim exercised: with task retry and speculative execution, the
/// MapReduce meta-blocking jobs absorb node failures and stragglers with
/// bounded makespan inflation — the Hadoop property \[4,5\] relies on.
pub fn exp15_fault_tolerance(scale: usize, seed: u64) -> String {
    use minoan_mapreduce::{fault_free_makespan, simulate_cluster, FaultConfig};
    let world = generate(&profiles::center_dense(scale * 2, seed));
    // A 32-worker engine produces 128 map tasks — cluster-like granularity.
    let engine = minoan_mapreduce::Engine::new(32);
    let (_, stats) = minoan_blocking::parallel::parallel_token_blocking_with_stats(
        &world.dataset,
        ErMode::CleanClean,
        &engine,
    );
    let tasks = &stats.map_task_nanos;
    let workers = 8usize;
    let clean = fault_free_makespan(tasks, workers).max(1);
    let mut table = Table::new(vec![
        "scenario",
        "makespan ms",
        "vs fault-free",
        "failed attempts",
        "speculative (wins)",
    ]);
    let scenarios: Vec<(&str, FaultConfig)> = vec![
        (
            "fault-free",
            FaultConfig {
                failure_probability: 0.0,
                straggler_probability: 0.0,
                straggler_factor: 1.0,
                speculative_threshold: None,
                seed,
                ..Default::default()
            },
        ),
        (
            "2% failures",
            FaultConfig {
                failure_probability: 0.02,
                straggler_probability: 0.0,
                straggler_factor: 1.0,
                speculative_threshold: None,
                seed,
                ..Default::default()
            },
        ),
        (
            "15% stragglers x10, no speculation",
            FaultConfig {
                failure_probability: 0.0,
                straggler_probability: 0.15,
                straggler_factor: 10.0,
                speculative_threshold: None,
                seed,
                ..Default::default()
            },
        ),
        (
            "15% stragglers x10, speculation",
            FaultConfig {
                failure_probability: 0.0,
                straggler_probability: 0.15,
                straggler_factor: 10.0,
                speculative_threshold: Some(1.5),
                seed,
                ..Default::default()
            },
        ),
        (
            "failures + stragglers + speculation",
            FaultConfig {
                seed,
                ..Default::default()
            },
        ),
    ];
    for (name, cfg) in scenarios {
        let sim = simulate_cluster(tasks, workers, &cfg);
        table.row(vec![
            name.to_string(),
            format!("{:.2}", sim.makespan_nanos as f64 / 1e6),
            format!("{:.2}x", sim.makespan_nanos as f64 / clean as f64),
            sim.failed_attempts.to_string(),
            format!("{} ({})", sim.speculative_attempts, sim.speculative_wins),
        ]);
    }
    format!(
        "map tasks: {} | fault-free reference: {:.2} ms\n{table}",
        tasks.len(),
        clean as f64 / 1e6
    )
}

/// E16 — variance across worlds: bootstrap confidence intervals (Table).
///
/// Claim exercised: the E4 ordering result (progressive > static > random
/// in early benefit) is not an artefact of one synthetic world — across
/// independently seeded worlds the recall-AUC confidence intervals of the
/// strategies separate.
pub fn exp16_variance(scale: usize, seed: u64) -> String {
    use minoan_eval::{mean_interval, progressive_curves, recall_auc};
    let strategies: Vec<(&str, Strategy)> = vec![
        (
            "progressive",
            Strategy::Progressive(BenefitModel::PairQuantity),
        ),
        ("static-best-first", Strategy::StaticBestFirst),
        ("random", Strategy::Random { seed }),
    ];
    let seeds: Vec<u64> = (0..5).map(|i| seed.wrapping_add(i * 1000 + 1)).collect();
    let mut aucs: Vec<(usize, Vec<f64>)> = strategies.iter().map(|_| (0, Vec::new())).collect();
    for &s in &seeds {
        let world = generate(&profiles::center_dense(scale, s));
        let pairs = super::experiments::candidate_pairs_public(&world, ErMode::CleanClean);
        // Early-benefit regime: 25% of the candidate budget.
        let budget = (pairs.len() / 4) as u64;
        for (i, (_, strategy)) in strategies.iter().enumerate() {
            let res = ProgressiveResolver::new(
                &world.dataset,
                Matcher::new(&world.dataset, MatcherConfig::default()),
                ResolverConfig {
                    strategy: *strategy,
                    budget,
                    ..Default::default()
                },
            )
            .run(&pairs);
            let curves = progressive_curves(&world.dataset, &world.truth, &res.trace, 20);
            aucs[i].1.push(recall_auc(&curves));
        }
    }
    let mut table = Table::new(vec!["strategy", "recall-AUC @25% budget (95% CI)"]);
    let mut intervals = Vec::new();
    for ((name, _), (_, samples)) in strategies.iter().zip(&aucs) {
        let iv = mean_interval(samples, 2_000, 0.95, seed);
        table.row(vec![name.to_string(), iv.render()]);
        intervals.push(iv);
    }
    let separated = intervals[0].lo > intervals[2].hi;
    format!(
        "{} independently seeded worlds, early-benefit regime\n{table}\nprogressive vs random CIs {}\n",
        seeds.len(),
        if separated { "SEPARATE (significant)" } else { "overlap" }
    )
}

/// E17 — corruption models vs blocker families (Table).
///
/// Claim exercised: which blocker survives which *kind* of value noise.
/// OCR confusion and insert/delete preserve most q-grams (q-grams and
/// adaptive SNM hold coverage); abbreviation destroys suffix q-grams but
/// keeps prefixes (adaptive SNM, which sorts by prefix, wins); every model
/// hurts exact token keys.
pub fn exp17_corruption(scale: usize, seed: u64) -> String {
    use minoan_datagen::CorruptionModel;
    let methods: Vec<(&str, Method)> = vec![
        ("token", Method::Token),
        ("qgrams(3)", Method::QGrams(3)),
        ("adaptive-snm", Method::AdaptiveSortedNeighborhood(4, 32)),
    ];
    let mut table = Table::new(vec![
        "corruption",
        "token PC",
        "qgrams PC",
        "adaptive-snm PC",
    ]);
    for model in CorruptionModel::ALL {
        let world = generate(&profiles::typo_noisy_with(scale, seed, model));
        let mut row = vec![model.name().to_string()];
        for (_, method) in &methods {
            let raw = method.run(&world.dataset, ErMode::CleanClean);
            let blocks =
                minoan_blocking::filter::filter(&minoan_blocking::purge::purge(&raw).collection);
            let (pc, _) = pair_quality(&world, &blocks.distinct_pairs());
            row.push(fmt3(pc));
        }
        table.row(row);
    }
    format!("typo rate 0.45, opaque URIs, collections after purge + filter\n{table}")
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCALE: usize = 120;

    #[test]
    fn exp9_produces_both_profiles() {
        let r = exp9_blocking_methods(SCALE, 3);
        assert!(r.contains("profile = center"));
        assert!(r.contains("profile = periphery"));
        assert!(r.contains("minhash-lsh"));
    }

    #[test]
    fn exp10_lists_all_pruners() {
        let r = exp10_metablocking_extensions(SCALE, 3);
        for p in ["none", "WEP/CBS", "WNP/ARCS", "BLAST", "supervised"] {
            assert!(r.contains(p), "missing {p} in\n{r}");
        }
    }

    #[test]
    fn exp11_covers_all_orders_plus_reference() {
        let r = exp11_incremental(SCALE, 3);
        for o in [
            "kb-sequential",
            "round-robin",
            "shuffled",
            "clustered-bursts",
            "batch reference",
        ] {
            assert!(r.contains(o), "missing {o} in\n{r}");
        }
    }

    #[test]
    fn exp12_renders_plot_and_efficiencies() {
        let r = exp12_oracle_bounds(SCALE, 3);
        assert!(r.contains("perfect oracle"));
        assert!(r.contains("efficiency"));
    }

    #[test]
    fn exp14_compares_clusterings() {
        let r = exp14_clustering(SCALE, 3);
        assert!(r.contains("connected-components"));
        assert!(r.contains("unique-mapping"));
        assert!(r.contains("b-cubed"));
    }

    #[test]
    fn exp15_simulates_faults() {
        let r = exp15_fault_tolerance(SCALE, 3);
        assert!(r.contains("fault-free"));
        assert!(r.contains("speculation"));
    }

    #[test]
    fn exp16_reports_intervals() {
        let r = exp16_variance(SCALE, 3);
        assert!(r.contains("recall-AUC"));
        assert!(r.contains("CI"));
    }

    #[test]
    fn exp17_sweeps_corruption_models() {
        let r = exp17_corruption(SCALE, 3);
        assert!(r.contains("ocr"));
        assert!(r.contains("abbreviation"));
    }

    #[test]
    fn exp13_reports_rules() {
        let r = exp13_composite_rules(SCALE, 3);
        assert!(r.contains("R1-name"));
        assert!(r.contains("threshold matcher"));
    }
}
