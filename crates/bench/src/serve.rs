//! The `serve` bench family: query-time resolution over the TCP server,
//! cached vs uncached, under concurrent ingest.
//!
//! The question the family answers: what does a `RESOLVE` cost when the
//! corpus is live? Both variants replay the *same* Zipf-skewed query
//! streams (seeded [`QueryMix`] per client) against the same world while
//! an ingest client keeps feeding arrival batches:
//!
//! * **cached** — the hot-neighbourhood cache enabled; ingests
//!   invalidate through the dirty sets (the bench combination, JS × WNP,
//!   is locally invalidatable), so hot entities are answered without a
//!   sweep until an arrival actually touches their neighbourhood;
//! * **uncached** — capacity 0; every resolve sweeps.
//!
//! Latency is measured per request at the client (full round trip over
//! loopback), so coalescing and lock contention are inside the measured
//! path, exactly as a caller would see them. The smoke mode replays
//! interleaved resolves and ingests, records every `(entity, version,
//! pairs)` answer, and re-derives each one from a fresh
//! [`IncrementalSession`] fed the same batch prefix — bitwise equality,
//! cache hits and misses alike — before any timing is trusted.

use crate::incremental::bench_world;
use minoan_blocking::ErMode;
use minoan_common::stats::percentile;
use minoan_common::QueryMix;
use minoan_datagen::generate;
use minoan_metablocking::{IncrementalSession, Pruning, WeightingScheme};
use minoan_rdf::{Dataset, EntityId};
use minoan_server::{Client, ResolveService, Server, ServiceStats};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// The scheme × pruning the family serves: JS × WNP delta-sweeps on
/// ingest *and* is locally invalidatable, so the cached variant shows
/// the dirty-set invalidation path rather than clearing wholesale.
pub const BENCH_SCHEME: WeightingScheme = WeightingScheme::Js;
/// See [`BENCH_SCHEME`].
pub const BENCH_PRUNING: Pruning = Pruning::Wnp { reciprocal: false };

/// One served answer as recorded by a query client: `(entity, stamped
/// version, pairs as raw bits)` — exactly what the smoke re-derives.
type RecordedAnswer = (u32, u64, Vec<(u32, u32, u64)>);

/// Share of the corpus ingested before the query run starts.
const PRELOAD_PERMILLE: usize = 550;
/// Arrival batch size for the concurrent ingest client.
const INGEST_BATCH: usize = 256;
/// Query skew (Zipf exponent) — a hot head with a long tail.
const SKEW: f64 = 1.0;

/// One measured variant of one configuration.
pub struct ServeRow {
    /// World size (entities parameter of the generator).
    pub world: usize,
    /// Descriptions in the generated corpus.
    pub descriptions: usize,
    /// `cached` or `uncached`.
    pub variant: &'static str,
    /// Concurrent query clients.
    pub clients: usize,
    /// Total resolves issued across all clients.
    pub requests: usize,
    /// Median round-trip resolve latency.
    pub p50_nanos: u128,
    /// Tail round-trip resolve latency.
    pub p99_nanos: u128,
    /// Wall clock of the query phase.
    pub total_nanos: u128,
    /// Resolves per second across all clients.
    pub qps: f64,
    /// Cache hits / (hits + misses) server-side.
    pub hit_rate: f64,
    /// Resolves that piggybacked on an in-flight duplicate.
    pub coalesced: u64,
    /// Arrival batches the concurrent ingest client applied mid-run.
    pub ingested_batches: usize,
}

struct VariantOutcome {
    latencies: Vec<f64>,
    wall_nanos: u128,
    stats: ServiceStats,
    ingested_batches: usize,
}

/// Runs one server variant: preload, then `clients` query threads
/// replaying seeded mixes while one ingest thread feeds the remaining
/// corpus in batches. Returns client-side latencies and the server's own
/// counters.
fn run_variant(
    dataset: &Dataset,
    preload: &[u32],
    rest: &[Vec<u32>],
    cache: usize,
    clients: usize,
    requests_per_client: usize,
    workers: usize,
) -> VariantOutcome {
    let service = ResolveService::new(
        dataset,
        ErMode::CleanClean,
        BENCH_SCHEME,
        BENCH_PRUNING,
        cache,
    );
    service.ingest(preload).expect("preload batch is valid");
    let server = Server::bind("127.0.0.1:0", service, workers).expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound address");
    let done = AtomicBool::new(false);
    let n = dataset.len();
    std::thread::scope(|s| {
        let running = s.spawn(|| server.run());
        let ingester = s.spawn(|| {
            let mut client = Client::connect(addr).expect("ingest client connects");
            let mut batches = 0usize;
            for batch in rest {
                if done.load(Ordering::Relaxed) {
                    break;
                }
                client.ingest(batch).expect("ingest batch is valid");
                batches += 1;
            }
            batches
        });
        let wall = Instant::now();
        let query_threads: Vec<_> = (0..clients)
            .map(|c| {
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("query client connects");
                    // Seed depends on the client index only, so the
                    // cached and uncached variants replay identical
                    // per-client streams.
                    let mut mix = QueryMix::new(n, SKEW, 1000 + c as u64);
                    let mut latencies = Vec::with_capacity(requests_per_client);
                    for _ in 0..requests_per_client {
                        let entity = mix.next_entity();
                        let t = Instant::now();
                        black_box(client.resolve(entity).expect("resolve in range"));
                        latencies.push(t.elapsed().as_nanos() as f64);
                    }
                    latencies
                })
            })
            .collect();
        let mut latencies = Vec::with_capacity(clients * requests_per_client);
        for handle in query_threads {
            latencies.extend(handle.join().expect("query client finishes"));
        }
        let wall_nanos = wall.elapsed().as_nanos();
        done.store(true, Ordering::Relaxed);
        let ingested_batches = ingester.join().expect("ingest client finishes");
        let stats = server.service().service_stats();
        Client::connect(addr)
            .and_then(|mut c| c.shutdown())
            .expect("clean shutdown");
        running
            .join()
            .expect("server thread exits")
            .expect("server run ok");
        VariantOutcome {
            latencies,
            wall_nanos,
            stats,
            ingested_batches,
        }
    })
}

/// Splits the corpus into the preload prefix and the ingest batches the
/// concurrent ingester feeds during the query phase.
fn split_corpus(descriptions: usize) -> (Vec<u32>, Vec<Vec<u32>>) {
    let preload_n = (descriptions * PRELOAD_PERMILLE / 1000).max(1);
    let preload: Vec<u32> = (0..preload_n as u32).collect();
    let rest: Vec<Vec<u32>> = (preload_n as u32..descriptions as u32)
        .collect::<Vec<u32>>()
        .chunks(INGEST_BATCH)
        .map(|c| c.to_vec())
        .collect();
    (preload, rest)
}

/// Runs the family: `cached` (capacity `cache`) vs `uncached` (capacity
/// 0) on the same world, same query streams, same arrival stream.
pub fn run_family(world: usize, requests: usize, clients: usize, cache: usize) -> Vec<ServeRow> {
    let g = generate(&bench_world(world));
    let descriptions = g.dataset.len();
    let (preload, rest) = split_corpus(descriptions);
    let per_client = (requests / clients.max(1)).max(1);
    let workers = clients.max(2);
    println!(
        "serve: world {world} ({descriptions} descriptions, {} preloaded, {} ingest batches), \
         {clients} clients × {per_client} resolves, cache {cache}",
        preload.len(),
        rest.len()
    );
    let mut rows = Vec::new();
    for (variant, capacity) in [("cached", cache), ("uncached", 0usize)] {
        let out = run_variant(
            &g.dataset, &preload, &rest, capacity, clients, per_client, workers,
        );
        let issued = out.latencies.len();
        let answered = out.stats.cache_hits + out.stats.cache_misses;
        let row = ServeRow {
            world,
            descriptions,
            variant,
            clients,
            requests: issued,
            p50_nanos: percentile(&out.latencies, 50.0) as u128,
            p99_nanos: percentile(&out.latencies, 99.0) as u128,
            total_nanos: out.wall_nanos,
            qps: issued as f64 / (out.wall_nanos as f64 / 1e9),
            hit_rate: if answered == 0 {
                0.0
            } else {
                out.stats.cache_hits as f64 / answered as f64
            },
            coalesced: out.stats.coalesced,
            ingested_batches: out.ingested_batches,
        };
        println!(
            "  {:<9} p50 {:>9.1} µs  p99 {:>9.1} µs  {:>9.0} qps  hit rate {:.3}  \
             coalesced {}  ({} ingest batches mid-run)",
            row.variant,
            row.p50_nanos as f64 / 1e3,
            row.p99_nanos as f64 / 1e3,
            row.qps,
            row.hit_rate,
            row.coalesced,
            row.ingested_batches
        );
        rows.push(row);
    }
    rows
}

/// Smoke gate: interleaved resolves and ingests over the live server,
/// every recorded `(entity, version, pairs)` answer re-derived from a
/// fresh [`IncrementalSession`] fed the same batch prefix — bitwise.
pub fn smoke() {
    let g = generate(&bench_world(400));
    let descriptions = g.dataset.len();
    let (preload, rest) = split_corpus(descriptions);
    let service = ResolveService::new(
        &g.dataset,
        ErMode::CleanClean,
        BENCH_SCHEME,
        BENCH_PRUNING,
        128,
    );
    service.ingest(&preload).expect("preload batch is valid");
    let server = Server::bind("127.0.0.1:0", service, 2).expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound address");

    // Interleave: one ingest client applies batches in order while two
    // query clients hammer a shared Zipf mix; every answer is recorded.
    let recorded: Vec<RecordedAnswer> = std::thread::scope(|s| {
        let running = s.spawn(|| server.run());
        let queriers: Vec<_> = (0..2)
            .map(|c| {
                let rest = &rest;
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("query client connects");
                    let mut mix = QueryMix::new(descriptions, SKEW, 77 + c as u64);
                    let mut seen = Vec::new();
                    // More resolves than batches, so hits, misses and
                    // invalidations all occur between version bumps.
                    for _ in 0..rest.len() * 8 + 40 {
                        let entity = mix.next_entity();
                        let r = client.resolve(entity).expect("resolve in range");
                        seen.push((r.entity, r.version, r.pairs));
                    }
                    seen
                })
            })
            .collect();
        let mut ingest = Client::connect(addr).expect("ingest client connects");
        for batch in &rest {
            ingest.ingest(batch).expect("ingest batch is valid");
        }
        let mut recorded = Vec::new();
        for q in queriers {
            recorded.extend(q.join().expect("query client finishes"));
        }
        let stats = server.service().service_stats();
        assert!(stats.cache_hits > 0, "smoke must exercise the cache");
        assert!(stats.cache_misses > 0, "smoke must exercise sweeps");
        ingest.shutdown().expect("clean shutdown");
        running
            .join()
            .expect("server thread exits")
            .expect("server run ok");
        recorded
    });

    // Reference: version v means preload + the first v-1 ingest batches
    // (the single ingest connection applies them in order).
    let mut references: BTreeMap<u64, IncrementalSession<'_>> = BTreeMap::new();
    let mut versions_checked = std::collections::BTreeSet::new();
    for (entity, version, pairs) in &recorded {
        let session = references.entry(*version).or_insert_with(|| {
            let mut session = IncrementalSession::new(&g.dataset, ErMode::CleanClean);
            session.scheme(BENCH_SCHEME).pruning(BENCH_PRUNING);
            let mut ids: Vec<EntityId> = preload.iter().map(|&e| EntityId(e)).collect();
            for batch in rest.iter().take(*version as usize - 1) {
                ids.extend(batch.iter().map(|&e| EntityId(e)));
            }
            session.ingest(&ids);
            session
        });
        let want = session.resolve_entity(EntityId(*entity));
        let want_bits: Vec<(u32, u32, u64)> = want
            .matches
            .iter()
            .map(|p| (p.a.0, p.b.0, p.weight.to_bits()))
            .collect();
        assert_eq!(
            *pairs, want_bits,
            "entity {entity} at version {version}: served answer diverged"
        );
        versions_checked.insert(*version);
    }
    assert!(
        versions_checked.len() > 1,
        "smoke must observe more than one corpus version, got {versions_checked:?}"
    );
    println!(
        "serve smoke: {} answers across {} corpus versions re-derived bit-identically — OK",
        recorded.len(),
        versions_checked.len()
    );
}

/// Formats the rows as the `serve` JSON section body.
pub fn rows_json(rows: &[ServeRow], threads: usize) -> String {
    let mut out = String::new();
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"world_entities\": {}, \"descriptions\": {}, \"variant\": \"{}\", \
             \"clients\": {}, \"requests\": {}, \"p50_nanos\": {}, \"p99_nanos\": {}, \
             \"total_nanos\": {}, \"qps\": {:.1}, \"cache_hit_rate\": {:.4}, \
             \"coalesced\": {}, \"ingested_batches\": {}, \"threads\": {}}}{}\n",
            r.world,
            r.descriptions,
            r.variant,
            r.clients,
            r.requests,
            r.p50_nanos,
            r.p99_nanos,
            r.total_nanos,
            r.qps,
            r.hit_rate,
            r.coalesced,
            r.ingested_batches,
            threads,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_rederives_every_answer() {
        smoke();
    }

    #[test]
    fn run_family_measures_both_variants() {
        let rows = run_family(300, 400, 2, 512);
        let [cached, uncached] = rows.as_slice() else {
            panic!("expected 2 rows, got {}", rows.len());
        };
        assert_eq!(cached.variant, "cached");
        assert_eq!(uncached.variant, "uncached");
        assert_eq!(cached.requests, uncached.requests, "same replayed streams");
        assert!(cached.hit_rate > 0.0, "cached variant must hit");
        assert_eq!(uncached.hit_rate, 0.0, "capacity 0 cannot hit");
        assert!(cached.p50_nanos > 0 && uncached.p50_nanos > 0);
        assert!(cached.p99_nanos >= cached.p50_nanos);
    }
}
