//! Experiment harness for the MinoanER reproduction.
//!
//! Each `expN` function regenerates one experiment from EXPERIMENTS.md and
//! returns its report as plain text; the `reproduce` binary prints them.
//! Criterion micro-benchmarks live in `benches/`.

#![forbid(unsafe_code)]

pub mod blockbuild;
pub mod experiments;
pub mod experiments2;
pub mod incremental;
pub mod serve;

pub use experiments::*;
pub use experiments2::*;
