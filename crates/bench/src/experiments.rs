//! The E2–E8 experiment implementations (see EXPERIMENTS.md).
//!
//! Sizes are chosen so `reproduce all` finishes in a couple of minutes on a
//! laptop while preserving the paper-claim *shapes*: who wins, by roughly
//! what factor, and where crossovers fall.

use minoan_blocking::{builders, filter, purge, BlockCollection, ErMode};
use minoan_datagen::{generate, profiles, GeneratedWorld};
use minoan_er::{
    BenefitModel, Matcher, MatcherConfig, Pipeline, PipelineConfig, ProgressiveResolver,
    Resolution, ResolverConfig, Strategy,
};
use minoan_eval::report::fmt3;
use minoan_eval::{metrics, progressive, Table};
use minoan_mapreduce::Engine;
use minoan_metablocking::{Pruning, Session, WeightingScheme};
use minoan_rdf::EntityId;
use std::fmt::Write as _;
use std::time::Instant;

/// Common scale knob: world entities per experiment dataset.
pub const DEFAULT_SCALE: usize = 500;

fn pairs_of(collection: &BlockCollection) -> Vec<(EntityId, EntityId)> {
    collection.distinct_pairs()
}

/// The standard candidate-generation pipeline (token+URI blocking, purge,
/// filter, ARCS-weighted WNP) shared by E4–E6 and the E9–E13 extensions.
pub fn candidate_pairs_public(
    world: &GeneratedWorld,
    mode: ErMode,
) -> Vec<(EntityId, EntityId, f64)> {
    candidate_pairs(world, mode)
}

fn candidate_pairs(world: &GeneratedWorld, mode: ErMode) -> Vec<(EntityId, EntityId, f64)> {
    let blocks = builders::token_and_uri_blocking(&world.dataset, mode);
    let cleaned = filter::filter(&purge::purge(&blocks).collection);
    Session::new(&cleaned)
        .scheme(WeightingScheme::Arcs)
        .pruning(Pruning::Wnp { reciprocal: false })
        .run()
        .into_candidates()
}

fn resolve(
    world: &GeneratedWorld,
    pairs: &[(EntityId, EntityId, f64)],
    config: ResolverConfig,
) -> Resolution {
    let matcher = Matcher::new(&world.dataset, MatcherConfig::default());
    ProgressiveResolver::new(&world.dataset, matcher, config).run(pairs)
}

/// E2 — blocking effectiveness across dataset regimes (Table).
///
/// Paper claim: schema-agnostic blocking drastically reduces comparisons
/// while keeping nearly all matches; purging + filtering trade a little PC
/// for large PQ/RR gains.
pub fn exp2_blocking(scale: usize, seed: u64) -> String {
    let mut out = String::new();
    let mut table = Table::new(vec![
        "profile",
        "method",
        "blocks",
        "comparisons",
        "PC",
        "PQ",
        "RR",
    ]);
    for (name, cfg) in profiles::all_profiles(scale, seed) {
        let world = generate(&cfg);
        let mode = if world.dataset.kb_count() > 1 {
            ErMode::CleanClean
        } else {
            ErMode::Dirty
        };
        let variants: Vec<(&str, BlockCollection)> = vec![
            ("token", builders::token_blocking(&world.dataset, mode)),
            (
                "token+uri",
                builders::token_and_uri_blocking(&world.dataset, mode),
            ),
            (
                "attr-clust",
                builders::attribute_clustering_blocking(&world.dataset, mode, 0.2),
            ),
            (
                "token+clean",
                filter::filter(
                    &purge::purge(&builders::token_blocking(&world.dataset, mode)).collection,
                ),
            ),
        ];
        for (method, blocks) in variants {
            let q = metrics::blocking_quality(&world.dataset, &world.truth, &pairs_of(&blocks));
            table.row(vec![
                name.into(),
                method.into(),
                blocks.len().to_string(),
                q.comparisons.to_string(),
                fmt3(q.pc),
                fmt3(q.pq),
                fmt3(q.rr),
            ]);
        }
    }
    let _ = writeln!(
        out,
        "E2: blocking effectiveness (PC/PQ/RR vs brute force)\n\n{table}"
    );
    out
}

/// E3 — the meta-blocking weighting × pruning grid (Table).
///
/// Paper claim: meta-blocking prunes repeated and low-evidence comparisons;
/// node-centric schemes retain recall at much lower cost.
pub fn exp3_metablocking(scale: usize, seed: u64) -> String {
    let world = generate(&profiles::center_dense(scale, seed));
    let blocks = builders::token_blocking(&world.dataset, ErMode::CleanClean);
    let cleaned = filter::filter(&purge::purge(&blocks).collection);
    // One session for the whole grid: the CSR graph is built once and
    // every scheme × pruning cell reuses it.
    let mut session = Session::new(&cleaned);
    let graph = session.graph();
    let num_edges = graph.num_edges();
    let base_pairs: Vec<(EntityId, EntityId)> = graph.edges().iter().map(|e| (e.a, e.b)).collect();
    let base_q = metrics::blocking_quality(&world.dataset, &world.truth, &base_pairs);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "E3: meta-blocking grid on center_dense({scale}) — blocking graph: {num_edges} edges, PC {}\n",
        fmt3(base_q.pc)
    );
    let mut table = Table::new(vec!["pruning", "scheme", "kept", "retention", "PC", "PQ"]);
    let pruners: [(&str, Pruning); 5] = [
        ("WEP", Pruning::Wep),
        ("CEP", Pruning::Cep(None)),
        ("WNP", Pruning::Wnp { reciprocal: false }),
        (
            "CNP",
            Pruning::Cnp {
                reciprocal: false,
                k: None,
            },
        ),
        ("WNP-recip", Pruning::Wnp { reciprocal: true }),
    ];
    for (pname, pruning) in pruners {
        session.pruning(pruning);
        for scheme in WeightingScheme::ALL {
            let pruned = session.scheme(scheme).run();
            let pairs: Vec<_> = pruned.pairs().iter().map(|p| (p.a, p.b)).collect();
            let q = metrics::blocking_quality(&world.dataset, &world.truth, &pairs);
            table.row(vec![
                pname.into(),
                scheme.name().into(),
                pairs.len().to_string(),
                fmt3(pruned.retention()),
                fmt3(q.pc),
                fmt3(q.pq),
            ]);
        }
    }
    let _ = writeln!(out, "{table}");
    out
}

/// E4 — progressive recall vs consumed budget (Figure).
///
/// Paper claim: scheduling promising comparisons first yields higher
/// benefit early; the dynamic scheduler dominates random and batch, and
/// overtakes static ordering as updates accumulate.
pub fn exp4_progressive_recall(scale: usize, seed: u64) -> String {
    let world = generate(&profiles::center_dense(scale, seed));
    let pairs = candidate_pairs(&world, ErMode::CleanClean);
    let total = pairs.len() as u64;
    let fractions = [5u64, 10, 20, 40, 60, 80, 100];

    // "batch" must not inherit meta-blocking's weight ordering: feed it
    // pair-id order (classic blocking-output order).
    let mut id_ordered = pairs.clone();
    id_ordered.sort_by_key(|p| (p.0, p.1));

    let strategies = [
        (
            "progressive",
            Strategy::Progressive(BenefitModel::PairQuantity),
        ),
        ("static", Strategy::StaticBestFirst),
        ("batch", Strategy::Batch),
        ("random", Strategy::Random { seed: 1 }),
    ];
    let mut series: Vec<(&str, Vec<f64>)> = Vec::new();
    let mut aucs: Vec<(&str, f64)> = Vec::new();
    for (label, strategy) in strategies {
        let input = if label == "batch" {
            &id_ordered
        } else {
            &pairs
        };
        let mut recalls = Vec::new();
        for f in fractions {
            let budget = (total * f) / 100;
            let res = resolve(
                &world,
                input,
                ResolverConfig {
                    strategy,
                    budget,
                    ..Default::default()
                },
            );
            recalls.push(metrics::resolution_quality(&world.truth, &res).recall);
        }
        // AUC from the full run's trace.
        let res = resolve(
            &world,
            input,
            ResolverConfig {
                strategy,
                ..Default::default()
            },
        );
        let pts = progressive::progressive_curves(&world.dataset, &world.truth, &res.trace, 20);
        aucs.push((label, progressive::recall_auc(&pts)));
        series.push((label, recalls));
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "E4: progressive recall vs budget on center_dense({scale}) — {} candidates\n",
        total
    );
    let xs: Vec<u64> = fractions.iter().map(|f| (total * f) / 100).collect();
    let _ = writeln!(
        out,
        "{}",
        minoan_eval::report::render_series("budget", &xs, &series)
    );
    let mut auc_table = Table::new(vec!["strategy", "recall AUC"]);
    for (label, auc) in aucs {
        auc_table.row(vec![label.into(), fmt3(auc)]);
    }
    let _ = writeln!(out, "{auc_table}");
    out
}

/// E5 — the three quality dimensions under each benefit model (Figure).
///
/// Paper claim: unlike pair-quantity progressive ER, MinoanER can target
/// attribute completeness, entity coverage or relationship completeness;
/// each model should lead on its own dimension early in the budget.
pub fn exp5_quality_dimensions(scale: usize, seed: u64) -> String {
    let world = generate(&profiles::lod_cloud(scale, seed));
    let pairs = candidate_pairs(&world, ErMode::CleanClean);
    let budget = (pairs.len() / 4) as u64; // quarter budget: the progressive regime

    let mut out = String::new();
    let _ = writeln!(
        out,
        "E5: quality dimensions at 25% budget ({budget} comparisons) on lod_cloud({scale})\n"
    );
    let mut table = Table::new(vec![
        "benefit model",
        "recall",
        "attr-compl AUC",
        "entity-cov AUC",
        "rel-compl AUC",
    ]);
    for model in BenefitModel::ALL {
        let res = resolve(
            &world,
            &pairs,
            ResolverConfig {
                strategy: Strategy::Progressive(model),
                budget,
                ..Default::default()
            },
        );
        let pts = progressive::progressive_curves(&world.dataset, &world.truth, &res.trace, 20);
        table.row(vec![
            model.name().into(),
            fmt3(pts.last().map(|p| p.recall).unwrap_or(0.0)),
            fmt3(progressive::dimension_auc(&pts, |p| p.attr_completeness)),
            fmt3(progressive::dimension_auc(&pts, |p| p.entity_coverage)),
            fmt3(progressive::dimension_auc(&pts, |p| p.rel_completeness)),
        ]);
    }
    let _ = writeln!(out, "{table}");
    let _ = writeln!(
        out,
        "(read column-wise: each quality-targeting model should lead its own AUC column)"
    );
    out
}

/// E6 — neighbour propagation on "somehow similar" periphery data (Figure).
///
/// Paper claim: exploiting partial matching results as similarity evidence
/// for neighbour descriptions recovers matches that blocking/value
/// similarity alone miss.
pub fn exp6_periphery(scale: usize, seed: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "E6: update-phase recovery on periphery regimes\n");
    let mut table = Table::new(vec![
        "profile",
        "alpha",
        "precision",
        "recall",
        "discovered",
        "matches",
    ]);
    for (name, cfg) in [
        ("periphery_sparse", profiles::periphery_sparse(scale, seed)),
        ("center_periphery", profiles::center_periphery(scale, seed)),
        (
            "bbc_music_dbpedia",
            profiles::bbc_music_dbpedia(scale, seed),
        ),
    ] {
        let world = generate(&cfg);
        let pairs = candidate_pairs(&world, ErMode::CleanClean);
        for alpha in [0.0, 0.5] {
            let res = resolve(
                &world,
                &pairs,
                ResolverConfig {
                    alpha,
                    ..Default::default()
                },
            );
            let q = metrics::resolution_quality(&world.truth, &res);
            table.row(vec![
                name.into(),
                format!("{alpha:.1}"),
                fmt3(q.precision),
                fmt3(q.recall),
                res.discovered_candidates.to_string(),
                q.emitted.to_string(),
            ]);
        }
    }
    let _ = writeln!(out, "{table}");
    out
}

/// E7 — parallel blocking & meta-blocking scalability (Table).
///
/// Paper claim: the blocking/meta-blocking layer exploits "the parallel
/// processing power of a computer cluster via Hadoop MapReduce"; here the
/// in-process engine shows the same work scaling with worker threads.
pub fn exp7_scalability(scale: usize, seed: u64) -> String {
    // Parallelism needs enough work per task: run at 5× the common scale.
    let scale = scale * 5;
    let world = generate(&profiles::center_dense(scale, seed));
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E7: MapReduce scalability on center_dense({scale}) — host has {cores} core(s)\n"
    );
    let _ = writeln!(
        out,
        "Speedups are *modeled*: per-task durations are measured for real and\n\
         scheduled greedily (LPT) onto w workers — the cluster simulation for\n\
         hosts without w physical cores. Wall ms is the actual local time.\n"
    );
    let mut table = Table::new(vec![
        "workers",
        "blocking wall ms",
        "blocking speedup*",
        "meta-blocking wall ms",
        "meta-blocking speedup*",
    ]);
    for workers in [1usize, 2, 4, 8] {
        let engine = Engine::new(workers);
        let t0 = Instant::now();
        let (blocks, bstats) = minoan_blocking::parallel::parallel_token_blocking_with_stats(
            &world.dataset,
            ErMode::CleanClean,
            &engine,
        );
        let block_ms = t0.elapsed().as_secs_f64() * 1e3;
        let cleaned = filter::filter(&purge::purge(&blocks).collection);
        let t1 = Instant::now();
        let (pairs, mstats) = minoan_metablocking::parallel::parallel_edge_weights_with_stats(
            &cleaned,
            WeightingScheme::Arcs,
            &engine,
        );
        let meta_ms = t1.elapsed().as_secs_f64() * 1e3;
        let bspeed = bstats.modeled_nanos(1) as f64 / bstats.modeled_nanos(workers).max(1) as f64;
        let mspeed = mstats.modeled_nanos(1) as f64 / mstats.modeled_nanos(workers).max(1) as f64;
        table.row(vec![
            workers.to_string(),
            format!("{block_ms:.1}"),
            format!("{bspeed:.2}x"),
            format!("{meta_ms:.1}"),
            format!("{mspeed:.2}x"),
        ]);
        // Sanity: results identical regardless of workers.
        assert_eq!(
            pairs.len(),
            minoan_metablocking::parallel::parallel_edge_weights(
                &cleaned,
                WeightingScheme::Arcs,
                &Engine::new(1)
            )
            .len()
        );
    }
    let _ = writeln!(out, "{table}");
    out
}

/// E8 — ablations of the design choices (Table).
pub fn exp8_ablations(scale: usize, seed: u64) -> String {
    let world = generate(&profiles::center_dense(scale, seed));
    let mut out = String::new();
    let _ = writeln!(out, "E8: ablations on center_dense({scale})\n");
    let mut table = Table::new(vec![
        "ablation",
        "setting",
        "candidates",
        "comparisons",
        "precision",
        "recall",
        "F1",
    ]);

    let mut run = |label: &str, setting: &str, config: PipelineConfig| {
        let o = Pipeline::new(config).run(&world.dataset);
        let q = metrics::resolution_quality(&world.truth, &o.resolution);
        table.row(vec![
            label.into(),
            setting.into(),
            o.candidates.to_string(),
            o.resolution.comparisons.to_string(),
            fmt3(q.precision),
            fmt3(q.recall),
            fmt3(q.f1),
        ]);
    };

    for (setting, purge) in [("on", true), ("off", false)] {
        run(
            "block purging",
            setting,
            PipelineConfig {
                purge,
                ..Default::default()
            },
        );
    }
    for ratio in [1.0, 0.8, 0.5] {
        run(
            "filter ratio",
            &format!("{ratio:.1}"),
            PipelineConfig {
                filter_ratio: Some(ratio),
                ..Default::default()
            },
        );
    }
    for (setting, reciprocal) in [("union", false), ("reciprocal", true)] {
        run(
            "WNP variant",
            setting,
            PipelineConfig {
                pruning: minoan_er::pipeline::PruningMethod::Wnp { reciprocal },
                ..Default::default()
            },
        );
    }
    for alpha in [0.0, 0.25, 0.5, 1.0] {
        run(
            "propagation α",
            &format!("{alpha:.2}"),
            PipelineConfig {
                resolver: ResolverConfig {
                    alpha,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
    }
    for floor in [0.2, 0.3, 0.4] {
        run(
            "value floor",
            &format!("{floor:.1}"),
            PipelineConfig {
                matcher: MatcherConfig {
                    value_floor: floor,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
    }
    let _ = writeln!(out, "{table}");
    out
}

/// Runs every experiment at the given scale, concatenating reports.
pub fn run_all(scale: usize, seed: u64) -> String {
    let mut out = String::new();
    for (name, report) in [
        ("E2", exp2_blocking(scale, seed)),
        ("E3", exp3_metablocking(scale, seed)),
        ("E4", exp4_progressive_recall(scale, seed)),
        ("E5", exp5_quality_dimensions(scale, seed)),
        ("E6", exp6_periphery(scale, seed)),
        ("E7", exp7_scalability(scale, seed)),
        ("E8", exp8_ablations(scale, seed)),
        (
            "E9",
            crate::experiments2::exp9_blocking_methods(scale, seed),
        ),
        (
            "E10",
            crate::experiments2::exp10_metablocking_extensions(scale, seed),
        ),
        ("E11", crate::experiments2::exp11_incremental(scale, seed)),
        ("E12", crate::experiments2::exp12_oracle_bounds(scale, seed)),
        (
            "E13",
            crate::experiments2::exp13_composite_rules(scale, seed),
        ),
        ("E14", crate::experiments2::exp14_clustering(scale, seed)),
        (
            "E15",
            crate::experiments2::exp15_fault_tolerance(scale, seed),
        ),
        ("E16", crate::experiments2::exp16_variance(scale, seed)),
        ("E17", crate::experiments2::exp17_corruption(scale, seed)),
    ] {
        let _ = writeln!(out, "================ {name} ================\n");
        out.push_str(&report);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: usize = 120;

    #[test]
    fn exp2_reports_all_profiles() {
        let r = exp2_blocking(S, 1);
        for name in ["center_dense", "periphery_sparse", "dirty_single"] {
            assert!(r.contains(name), "missing {name}");
        }
        assert!(r.contains("token+uri"));
    }

    #[test]
    fn exp3_covers_grid() {
        let r = exp3_metablocking(S, 1);
        for s in [
            "CBS",
            "ECBS",
            "JS",
            "EJS",
            "ARCS",
            "WEP",
            "CNP",
            "WNP-recip",
        ] {
            assert!(r.contains(s), "missing {s}");
        }
    }

    #[test]
    fn exp4_has_all_strategies() {
        let r = exp4_progressive_recall(S, 1);
        for s in ["progressive", "static", "batch", "random", "recall AUC"] {
            assert!(r.contains(s), "missing {s}");
        }
    }

    #[test]
    fn exp5_lists_all_models() {
        let r = exp5_quality_dimensions(S, 1);
        for m in BenefitModel::ALL {
            assert!(r.contains(m.name()), "missing {}", m.name());
        }
    }

    #[test]
    fn exp6_compares_alpha() {
        let r = exp6_periphery(S, 1);
        assert!(r.contains("0.0") && r.contains("0.5"));
        assert!(r.contains("periphery_sparse"));
    }

    #[test]
    fn exp7_and_exp8_run() {
        assert!(exp7_scalability(S, 1).contains("workers"));
        let r = exp8_ablations(S, 1);
        assert!(r.contains("block purging") && r.contains("value floor"));
    }
}
