//! String interning.
//!
//! Tokens, attribute names and URI fragments are repeated millions of times
//! in blocking. Interning replaces them with dense `u32` [`Symbol`]s so the
//! rest of the system hashes and compares integers, and block indexes can be
//! plain vectors indexed by symbol.

use crate::hash::FxHashMap;
use std::fmt;

/// A dense handle to an interned string.
///
/// Symbols are only meaningful relative to the [`Interner`] that produced
/// them; they are ordered by first-interning time.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The raw index of this symbol, usable as a vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// An append-only string interner.
///
/// Strings are stored once; [`Interner::intern`] returns the existing symbol
/// for a known string. Lookup back to `&str` is O(1).
#[derive(Default, Clone)]
pub struct Interner {
    map: FxHashMap<Box<str>, Symbol>,
    strings: Vec<Box<str>>,
    /// Reused composition buffer for [`Interner::intern_prefixed`].
    scratch: String,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an interner with capacity for `n` distinct strings.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            map: FxHashMap::with_capacity_and_hasher(n, Default::default()),
            strings: Vec::with_capacity(n),
            scratch: String::new(),
        }
    }

    /// Interns `s`, returning its dense symbol.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Symbol(
            u32::try_from(self.strings.len())
                .expect("interner overflow: more than u32::MAX strings"),
        );
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.map.insert(boxed, sym);
        sym
    }

    /// Interns the concatenation `{prefix}{rest}` without allocating a
    /// fresh `String` per call: the two parts are composed in a reused
    /// internal buffer. This is how namespaced key spaces (e.g. the
    /// `uri:` prefix of URI-infix blocking) stay disjoint without a
    /// `format!` allocation per token.
    pub fn intern_prefixed(&mut self, prefix: &str, rest: &str) -> Symbol {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.push_str(prefix);
        scratch.push_str(rest);
        let sym = self.intern(&scratch);
        self.scratch = scratch;
        sym
    }

    /// Returns the symbol for `s` if it was interned before.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` did not come from this interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether no string has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates over `(Symbol, &str)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Symbol(i as u32), s.as_ref()))
    }
}

impl fmt::Debug for Interner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interner")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("dbpedia");
        let b = i.intern("dbpedia");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn symbols_are_dense_and_resolve() {
        let mut i = Interner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(i.resolve(a), "a");
        assert_eq!(i.resolve(b), "b");
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("x"), None);
        let s = i.intern("x");
        assert_eq!(i.get("x"), Some(s));
    }

    #[test]
    fn iter_preserves_order() {
        let mut i = Interner::new();
        for w in ["t0", "t1", "t2"] {
            i.intern(w);
        }
        let collected: Vec<&str> = i.iter().map(|(_, s)| s).collect();
        assert_eq!(collected, vec!["t0", "t1", "t2"]);
    }

    #[test]
    fn with_capacity_starts_empty() {
        let i = Interner::with_capacity(128);
        assert!(i.is_empty());
    }

    #[test]
    fn intern_prefixed_equals_concatenation() {
        let mut i = Interner::new();
        let a = i.intern_prefixed("uri:", "knossos");
        let b = i.intern("uri:knossos");
        assert_eq!(a, b);
        assert_eq!(i.resolve(a), "uri:knossos");
        // Distinct namespaces stay disjoint.
        let plain = i.intern("knossos");
        assert_ne!(a, plain);
        assert_eq!(i.len(), 2);
    }
}
