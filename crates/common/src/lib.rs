//! Shared infrastructure for the MinoanER reproduction.
//!
//! This crate hosts the small, dependency-free building blocks every other
//! subsystem uses:
//!
//! * [`hash`] — an FxHash-style fast hasher plus [`FxHashMap`]/[`FxHashSet`]
//!   aliases used on all hot paths (token maps, block indexes, edge maps).
//! * [`interner`] — string interning so tokens, attribute names and URIs are
//!   handled as dense `u32` symbols.
//! * [`union_find`] — path-halving union–find used for match clustering.
//! * [`topk`] — a bounded top-k selector used by cardinality pruning (CEP,
//!   CNP) and the progressive scheduler diagnostics.
//! * [`zipf`] — Zipf-distributed sampling for the synthetic LOD generator
//!   (token popularity in real KBs is heavily skewed).
//! * [`stats`] — tiny numeric helpers (mean, percentile, AUC of a step
//!   curve) shared by evaluation and pruning code.

#![forbid(unsafe_code)]

pub mod hash;
pub mod interner;
pub mod ordf64;
pub mod stats;
pub mod topk;
pub mod union_find;
pub mod zipf;

pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use interner::{Interner, Symbol};
pub use ordf64::OrdF64;
pub use topk::TopK;
pub use union_find::UnionFind;
pub use zipf::{QueryMix, Zipf};

/// Default worker count for the thread-parallel passes (CSR builds,
/// sweeps): all available parallelism, 1 when it cannot be queried. The
/// one definition every subsystem shares — results never depend on it.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}
