//! A totally ordered wrapper for finite `f64` values.
//!
//! Priorities, weights and similarities in this project are always finite,
//! so a panicking total order is the right tool: NaNs indicate a bug and
//! fail loudly instead of silently mis-sorting.

/// Finite `f64` with total order. Construction does not validate; the
/// comparison panics on NaN.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct OrdF64(pub f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("NaN in OrdF64 comparison")
    }
}

impl From<f64> for OrdF64 {
    fn from(v: f64) -> Self {
        OrdF64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_like_f64() {
        let mut v = vec![OrdF64(3.0), OrdF64(-1.0), OrdF64(2.5)];
        v.sort();
        assert_eq!(v, vec![OrdF64(-1.0), OrdF64(2.5), OrdF64(3.0)]);
    }

    #[test]
    fn works_in_binary_heap() {
        let mut h = std::collections::BinaryHeap::new();
        h.push(OrdF64(1.0));
        h.push(OrdF64(9.0));
        h.push(OrdF64(4.0));
        assert_eq!(h.pop(), Some(OrdF64(9.0)));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_panics_on_compare() {
        let _ = OrdF64(f64::NAN) < OrdF64(1.0);
    }
}
