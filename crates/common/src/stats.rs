//! Small numeric helpers shared by pruning and evaluation code.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; `0.0` for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// `p`-th percentile (0..=100) by nearest-rank on a copy of the data.
/// Returns `0.0` for an empty slice.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * (v.len() as f64 - 1.0)).round() as usize;
    v[rank]
}

/// Area under a monotone step curve given as `(x, y)` points, normalised by
/// the x-range so the result is the mean height over `[x0, x_last]`.
///
/// This is the standard summary of a progressive-recall curve: a method that
/// reaches high recall early has a larger normalised AUC. Points must be
/// sorted by `x`; the curve is treated as right-continuous steps (value `y_i`
/// holds on `[x_i, x_{i+1})`).
pub fn normalized_step_auc(points: &[(f64, f64)]) -> f64 {
    if points.len() < 2 {
        return points.first().map(|p| p.1).unwrap_or(0.0);
    }
    let x0 = points[0].0;
    let x1 = points[points.len() - 1].0;
    let span = x1 - x0;
    if span <= 0.0 {
        return points[points.len() - 1].1;
    }
    let mut area = 0.0;
    for w in points.windows(2) {
        debug_assert!(w[1].0 >= w[0].0, "points must be sorted by x");
        area += w[0].1 * (w[1].0 - w[0].0);
    }
    area / span
}

/// Harmonic mean of two non-negative values (the F-measure combinator).
pub fn harmonic_mean(a: f64, b: f64) -> f64 {
    if a + b == 0.0 {
        0.0
    } else {
        2.0 * a * b / (a + b)
    }
}

/// Deterministic fixed-shape pairwise (cascade) summation.
///
/// The reduction tree depends only on `xs.len()` — never on thread count
/// or chunking — so any two callers that assemble the same slice get the
/// same f64 down to the last bit. Streaming WEP relies on this: each
/// worker fills its slots of a per-entity partial-sum slab, and the final
/// reduction over that fixed-length slab is identical whether the slab was
/// produced by one thread or sixteen. Pairwise summation also carries the
/// usual `O(log n)` error bound, tighter than a running sum.
pub fn pairwise_sum(xs: &[f64]) -> f64 {
    if xs.len() <= 8 {
        let mut s = 0.0;
        for &x in xs {
            s += x;
        }
        return s;
    }
    let mid = xs.len() / 2;
    pairwise_sum(&xs[..mid]) + pairwise_sum(&xs[mid..])
}

/// Natural-log "information" weight `ln(total / part)`, clamped at 0 —
/// the shape used by ECBS/EJS meta-blocking weights. Returns 0 when either
/// argument is non-positive or `part > total`.
pub fn log_weight(total: f64, part: f64) -> f64 {
    if total <= 0.0 || part <= 0.0 {
        return 0.0;
    }
    (total / part).ln().max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
        assert_eq!(std_dev(&[5.0]), 0.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn auc_of_constant_curve_is_constant() {
        let pts = [(0.0, 0.5), (1.0, 0.5), (2.0, 0.5)];
        assert!((normalized_step_auc(&pts) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_rewards_early_rise() {
        let early = [(0.0, 0.0), (0.1, 1.0), (1.0, 1.0)];
        let late = [(0.0, 0.0), (0.9, 1.0), (1.0, 1.0)];
        assert!(normalized_step_auc(&early) > normalized_step_auc(&late));
    }

    #[test]
    fn auc_degenerate_inputs() {
        assert_eq!(normalized_step_auc(&[]), 0.0);
        assert_eq!(normalized_step_auc(&[(3.0, 0.7)]), 0.7);
        assert_eq!(normalized_step_auc(&[(1.0, 0.2), (1.0, 0.9)]), 0.9);
    }

    #[test]
    fn harmonic_mean_basics() {
        assert_eq!(harmonic_mean(0.0, 0.0), 0.0);
        assert!((harmonic_mean(1.0, 1.0) - 1.0).abs() < 1e-12);
        assert!((harmonic_mean(0.5, 1.0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn pairwise_sum_matches_naive_on_exact_inputs() {
        assert_eq!(pairwise_sum(&[]), 0.0);
        assert_eq!(pairwise_sum(&[1.5]), 1.5);
        // Sums of small integers are exact in f64, so pairwise == naive.
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(pairwise_sum(&xs), 5050.0);
    }

    #[test]
    fn pairwise_sum_shape_depends_only_on_length() {
        // Splitting the slice at arbitrary points and reducing the parts
        // separately is NOT the defined order — but calling the function
        // twice on equal content must agree bitwise.
        let xs: Vec<f64> = (0..1000).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let a = pairwise_sum(&xs);
        let b = pairwise_sum(&xs.clone());
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn log_weight_clamps() {
        assert_eq!(log_weight(10.0, 0.0), 0.0);
        assert_eq!(log_weight(0.0, 1.0), 0.0);
        assert_eq!(log_weight(5.0, 10.0), 0.0, "part > total clamps to 0");
        assert!((log_weight(100.0, 10.0) - (10.0f64).ln()).abs() < 1e-12);
    }
}
