//! Zipf-distributed sampling.
//!
//! Token popularity in real knowledge bases is heavily skewed: a few tokens
//! ("john", "london", "2010") appear everywhere while most appear once. The
//! synthetic LOD generator samples token ids from a Zipf distribution so
//! block size distributions match the power-law shape the blocking and
//! purging algorithms were designed for.

use rand::Rng;

/// Zipf distribution over ranks `0..n` with exponent `s`.
///
/// Sampling uses the inverse-CDF method over a precomputed cumulative table,
/// which is exact and `O(log n)` per sample — plenty for generator-scale `n`
/// (≤ a few hundred thousand token ranks).
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a Zipf sampler over `n` ranks with skew exponent `s`.
    ///
    /// `s = 0` degenerates to the uniform distribution; `s ≈ 1` matches
    /// natural-language token frequencies.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative or non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over empty support");
        assert!(s.is_finite() && s >= 0.0, "invalid Zipf exponent {s}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating point leaving the last entry below 1.0.
        *cdf.last_mut().expect("non-empty") = 1.0;
        Self { cdf }
    }

    /// Number of ranks in the support.
    pub fn support(&self) -> usize {
        self.cdf.len()
    }

    /// Samples a rank in `0..support()`; rank 0 is the most probable.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first index whose cdf ≥ u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of `rank`.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank >= self.cdf.len() {
            return 0.0;
        }
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.0);
        let sum: f64 = (0..100).map(|r| z.pmf(r)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank_zero_is_most_probable() {
        let z = Zipf::new(50, 1.2);
        for r in 1..50 {
            assert!(z.pmf(0) >= z.pmf(r));
        }
    }

    #[test]
    fn uniform_when_s_is_zero() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn samples_stay_in_support_and_skew_low() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut low = 0usize;
        for _ in 0..10_000 {
            let r = z.sample(&mut rng);
            assert!(r < 1000);
            if r < 10 {
                low += 1;
            }
        }
        // With s=1 over 1000 ranks, the top-10 ranks carry ~39% of the mass.
        assert!(low > 2_500, "top ranks undersampled: {low}");
    }

    #[test]
    fn single_rank_always_sampled() {
        let z = Zipf::new(1, 1.5);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.pmf(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "empty support")]
    fn zero_support_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
