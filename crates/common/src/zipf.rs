//! Zipf-distributed sampling.
//!
//! Token popularity in real knowledge bases is heavily skewed: a few tokens
//! ("john", "london", "2010") appear everywhere while most appear once. The
//! synthetic LOD generator samples token ids from a Zipf distribution so
//! block size distributions match the power-law shape the blocking and
//! purging algorithms were designed for.

use rand::{rngs::StdRng, seq::SliceRandom, Rng, SeedableRng};

/// Zipf distribution over ranks `0..n` with exponent `s`.
///
/// Sampling uses the inverse-CDF method over a precomputed cumulative table,
/// which is exact and `O(log n)` per sample — plenty for generator-scale `n`
/// (≤ a few hundred thousand token ranks).
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a Zipf sampler over `n` ranks with skew exponent `s`.
    ///
    /// `s = 0` degenerates to the uniform distribution; `s ≈ 1` matches
    /// natural-language token frequencies.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative or non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over empty support");
        assert!(s.is_finite() && s >= 0.0, "invalid Zipf exponent {s}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating point leaving the last entry below 1.0.
        *cdf.last_mut().expect("non-empty") = 1.0;
        Self { cdf }
    }

    /// Number of ranks in the support.
    pub fn support(&self) -> usize {
        self.cdf.len()
    }

    /// Samples a rank in `0..support()`; rank 0 is the most probable.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first index whose cdf ≥ u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of `rank`.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank >= self.cdf.len() {
            return 0.0;
        }
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

/// A seeded Zipf-skewed stream of query entities over `0..n`.
///
/// The serve bench and the serve-consistency tests both need the same
/// workload shape: a few hot entities queried constantly, a long tail
/// queried rarely — the regime a hot-neighbourhood cache exists for. A
/// `QueryMix` decouples *skew* from *identity*: ranks are drawn from a
/// [`Zipf`] with the given exponent, then mapped through a seeded random
/// permutation of the id space, so the hot set is an arbitrary subset of
/// the corpus rather than always the lowest ids (which the generator
/// tends to fill with one dataset's records first).
///
/// Two mixes built with the same `(n, skew, seed)` yield the same entity
/// sequence, so a bench variant pair (cached vs uncached) replays the
/// identical workload.
#[derive(Clone, Debug)]
pub struct QueryMix {
    zipf: Zipf,
    perm: Vec<u32>,
    rng: StdRng,
}

impl QueryMix {
    /// Builds a query mix over entity ids `0..n` with Zipf exponent
    /// `skew` (0 = uniform) and a deterministic `seed`.
    ///
    /// # Panics
    /// Panics if `n == 0`, `n` exceeds `u32` range, or `skew` is
    /// negative or non-finite (propagated from [`Zipf::new`]).
    pub fn new(n: usize, skew: f64, seed: u64) -> Self {
        assert!(
            u32::try_from(n).is_ok(),
            "QueryMix support exceeds u32 id space"
        );
        let zipf = Zipf::new(n, skew);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.shuffle(&mut rng);
        Self { zipf, perm, rng }
    }

    /// Number of distinct entities the mix draws from.
    pub fn support(&self) -> usize {
        self.perm.len()
    }

    /// Draws the next query entity.
    pub fn next_entity(&mut self) -> u32 {
        let rank = self.zipf.sample(&mut self.rng);
        self.perm[rank]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.0);
        let sum: f64 = (0..100).map(|r| z.pmf(r)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank_zero_is_most_probable() {
        let z = Zipf::new(50, 1.2);
        for r in 1..50 {
            assert!(z.pmf(0) >= z.pmf(r));
        }
    }

    #[test]
    fn uniform_when_s_is_zero() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn samples_stay_in_support_and_skew_low() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut low = 0usize;
        for _ in 0..10_000 {
            let r = z.sample(&mut rng);
            assert!(r < 1000);
            if r < 10 {
                low += 1;
            }
        }
        // With s=1 over 1000 ranks, the top-10 ranks carry ~39% of the mass.
        assert!(low > 2_500, "top ranks undersampled: {low}");
    }

    #[test]
    fn single_rank_always_sampled() {
        let z = Zipf::new(1, 1.5);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.pmf(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "empty support")]
    fn zero_support_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn query_mix_is_deterministic_per_seed() {
        let mut a = QueryMix::new(500, 1.0, 42);
        let mut b = QueryMix::new(500, 1.0, 42);
        let mut c = QueryMix::new(500, 1.0, 43);
        let xs: Vec<u32> = (0..200).map(|_| a.next_entity()).collect();
        let ys: Vec<u32> = (0..200).map(|_| b.next_entity()).collect();
        let zs: Vec<u32> = (0..200).map(|_| c.next_entity()).collect();
        assert_eq!(xs, ys, "same seed must replay the same stream");
        assert_ne!(xs, zs, "different seeds must diverge");
        assert!(xs.iter().all(|&e| (e as usize) < 500));
    }

    #[test]
    fn query_mix_skew_concentrates_on_a_hot_set() {
        let mut m = QueryMix::new(1000, 1.0, 7);
        let mut counts = vec![0usize; 1000];
        for _ in 0..10_000 {
            counts[m.next_entity() as usize] += 1;
        }
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top10: usize = sorted[..10].iter().sum();
        // Same mass bound as the raw Zipf test: ~39% on the top 10 ranks.
        assert!(top10 > 2_500, "hot set undersampled: {top10}");
        // The hot set is permuted, not simply ids 0..10.
        let low10: usize = counts[..10].iter().sum();
        assert!(low10 < top10, "permutation left the hot set at the low ids");
    }

    #[test]
    #[should_panic(expected = "empty support")]
    fn query_mix_zero_support_panics() {
        let _ = QueryMix::new(0, 1.0, 1);
    }
}
