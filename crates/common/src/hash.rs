//! FxHash-style hashing.
//!
//! The default `SipHash 1-3` hasher of the standard library is DoS-resistant
//! but slow for the short integer and symbol keys that dominate blocking and
//! meta-blocking. This module re-implements the well-known Fx hash function
//! (as used by rustc) so we get fast hashing without an extra dependency.
//! HashDoS resistance is irrelevant here: all inputs are locally generated.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant of the Fx hash function (64-bit variant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher for short keys.
///
/// Implements the same add-rotate-multiply mix as rustc's `FxHasher`.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            // Mix in the length so "a" and "a\0" differ.
            self.add_to_hash(u64::from_le_bytes(buf) ^ (rem.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with the Fx hasher — the default map type of this project.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with the Fx hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// One-shot Fx hash of a byte string (used for stable bucket ids, e.g. the
/// LSH band buckets, where a `Hasher` round trip would be noise).
#[inline]
pub fn fx_hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash + ?Sized>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&"token"), hash_of(&"token"));
    }

    #[test]
    fn distinguishes_nearby_integers() {
        let h: Vec<u64> = (0u64..64).map(|i| hash_of(&i)).collect();
        let distinct: std::collections::HashSet<_> = h.iter().collect();
        assert_eq!(distinct.len(), 64);
    }

    #[test]
    fn distinguishes_prefix_strings() {
        assert_ne!(hash_of(&"a"), hash_of(&"aa"));
        assert_ne!(hash_of(&"abcdefgh"), hash_of(&"abcdefghi"));
        // Trailing zero byte must not collide with the shorter string.
        assert_ne!(hash_of(&[1u8, 0][..]), hash_of(&[1u8][..]));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<&str, u32> = FxHashMap::default();
        m.insert("alpha", 1);
        m.insert("beta", 2);
        assert_eq!(m.get("alpha"), Some(&1));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn empty_write_is_stable() {
        let mut h = FxHasher::default();
        h.write(&[]);
        assert_eq!(h.finish(), 0);
    }
}
