//! Union–find (disjoint set) with path halving and union by size.
//!
//! Used by match clustering: every accepted match `(i, j)` unions the two
//! descriptions; the resulting components are the resolved entity clusters.

/// Disjoint-set forest over dense `u32` element ids.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets with ids `0..n`.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint components.
    pub fn components(&self) -> usize {
        self.components
    }

    /// Finds the representative of `x`, halving the path on the way.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return x;
            }
            let gp = self.parent[p as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
    }

    /// Read-only find (no path compression); useful behind shared references.
    pub fn find_immutable(&self, mut x: u32) -> u32 {
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return x;
            }
            x = p;
        }
    }

    /// Unions the sets of `a` and `b`. Returns `true` if they were disjoint.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: u32) -> u32 {
        let r = self.find(x);
        self.size[r as usize]
    }

    /// Groups all elements by representative, returning clusters with ≥ `min`
    /// members, each sorted ascending. Cluster order is by smallest member.
    pub fn clusters(&mut self, min: usize) -> Vec<Vec<u32>> {
        let n = self.len();
        let mut by_root: crate::FxHashMap<u32, Vec<u32>> = crate::FxHashMap::default();
        for x in 0..n as u32 {
            by_root.entry(self.find(x)).or_default().push(x);
        }
        let mut out: Vec<Vec<u32>> = by_root.into_values().filter(|c| c.len() >= min).collect();
        for c in &mut out {
            c.sort_unstable();
        }
        out.sort_unstable_by_key(|c| c[0]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_disjoint() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.components(), 4);
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.set_size(2), 1);
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already merged");
        assert_eq!(uf.components(), 3);
        assert!(uf.connected(0, 2));
        assert_eq!(uf.set_size(1), 3);
    }

    #[test]
    fn clusters_filter_and_sort() {
        let mut uf = UnionFind::new(6);
        uf.union(5, 3);
        uf.union(3, 1);
        uf.union(0, 2);
        let clusters = uf.clusters(2);
        assert_eq!(clusters, vec![vec![0, 2], vec![1, 3, 5]]);
        let all = uf.clusters(1);
        assert_eq!(all.len(), 3); // {0,2}, {1,3,5}, {4}
    }

    #[test]
    fn find_immutable_matches_find() {
        let mut uf = UnionFind::new(8);
        uf.union(0, 7);
        uf.union(7, 3);
        let r = uf.find(3);
        assert_eq!(uf.find_immutable(0), r);
        assert_eq!(uf.find_immutable(7), r);
    }

    #[test]
    fn transitive_chain_single_component() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.components(), 1);
        assert_eq!(uf.set_size(50), 100);
    }
}
