//! Bounded top-k selection.
//!
//! Cardinality-based meta-blocking pruning (CEP, CNP) must retain the `k`
//! highest-weighted comparisons out of streams far larger than `k`. [`TopK`]
//! keeps a min-heap of size ≤ `k`: each push is `O(log k)` and memory is
//! bounded regardless of stream length.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Keeps the `k` largest items pushed into it (by `Ord`).
///
/// Ties at the boundary are resolved in favour of earlier-pushed items, which
/// keeps pruning deterministic given a deterministic push order.
#[derive(Clone, Debug)]
pub struct TopK<T: Ord> {
    k: usize,
    heap: BinaryHeap<Reverse<T>>,
}

impl<T: Ord> TopK<T> {
    /// Creates a selector for the `k` largest items. `k == 0` keeps nothing.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            heap: BinaryHeap::with_capacity(k.saturating_add(1)),
        }
    }

    /// Offers an item; it is kept only if it ranks in the current top-k.
    /// Returns `true` if the item was retained.
    pub fn push(&mut self, item: T) -> bool {
        if self.k == 0 {
            return false;
        }
        if self.heap.len() < self.k {
            self.heap.push(Reverse(item));
            return true;
        }
        // Strictly greater than the current minimum replaces it.
        let min = self.heap.peek().expect("non-empty");
        if item > min.0 {
            self.heap.pop();
            self.heap.push(Reverse(item));
            true
        } else {
            false
        }
    }

    /// Current smallest retained item (the "entry bar"), if any.
    pub fn threshold(&self) -> Option<&T> {
        self.heap.peek().map(|r| &r.0)
    }

    /// Number of retained items (≤ k).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Consumes the selector, returning retained items sorted descending.
    pub fn into_sorted_vec(self) -> Vec<T> {
        let mut v: Vec<T> = self.heap.into_iter().map(|r| r.0).collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_k_largest() {
        let mut t = TopK::new(3);
        for x in [5, 1, 9, 3, 7, 2] {
            t.push(x);
        }
        assert_eq!(t.into_sorted_vec(), vec![9, 7, 5]);
    }

    #[test]
    fn fewer_than_k_keeps_all() {
        let mut t = TopK::new(10);
        t.push(2);
        t.push(1);
        assert_eq!(t.len(), 2);
        assert_eq!(t.into_sorted_vec(), vec![2, 1]);
    }

    #[test]
    fn zero_k_keeps_nothing() {
        let mut t = TopK::new(0);
        assert!(!t.push(5));
        assert!(t.is_empty());
    }

    #[test]
    fn equal_items_do_not_evict() {
        let mut t = TopK::new(2);
        assert!(t.push((5, "first")));
        assert!(t.push((5, "second")));
        // (5, "a") < (5, "first") lexicographically on the tag, so rejected;
        // equal-to-threshold items are rejected too.
        assert!(!t.push((4, "late")));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn threshold_tracks_minimum() {
        let mut t = TopK::new(2);
        assert_eq!(t.threshold(), None);
        t.push(10);
        t.push(20);
        assert_eq!(t.threshold(), Some(&10));
        t.push(30);
        assert_eq!(t.threshold(), Some(&20));
    }
}
