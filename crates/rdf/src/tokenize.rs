//! Schema-agnostic tokenisation.
//!
//! Token blocking assumes only that matching descriptions "feature a common
//! token in their descriptions or URIs" (paper, §1). This module extracts
//! those tokens:
//!
//! * [`value_tokens`] — lower-cased alphanumeric runs of length ≥ 2 from
//!   literal values, with a small stop-word filter (articles/prepositions
//!   carry no matching evidence and would create giant useless blocks).
//! * [`UriDecomposition`] — the Prefix-Infix(-Suffix) scheme: LOD entity
//!   URIs are `prefix` (namespace, KB-specific) + `infix` (the entity-naming
//!   part) + optional generic `suffix` (e.g. a trailing `/about`, format
//!   extensions). Only infix tokens carry cross-KB naming evidence.

/// Words filtered out of value tokens. Deliberately small and conservative —
/// schema-agnostic blocking must not assume language, so we only remove the
/// highest-frequency English glue words that appear in synthetic values.
pub const STOP_WORDS: &[&str] = &[
    "the", "of", "and", "in", "on", "at", "to", "for", "with", "by", "an", "is", "was", "are",
    "from", "as", "it", "its", "be", "or",
];

fn is_stop_word(tok: &str) -> bool {
    STOP_WORDS.contains(&tok)
}

/// Iterates the blocking tokens of a literal value: maximal alphanumeric
/// runs, lower-cased, length ≥ 2, stop words removed. Pure digits are kept
/// (years and numeric codes are strong evidence in LOD data).
pub fn value_tokens(value: &str) -> impl Iterator<Item = String> + '_ {
    value
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| t.len() >= 2)
        .map(|t| t.to_lowercase())
        .filter(|t| !is_stop_word(t))
}

/// Collects [`value_tokens`] into a vector (convenience for tests/benches).
pub fn value_token_vec(value: &str) -> Vec<String> {
    value_tokens(value).collect()
}

/// Reusable scratch buffers for the allocation-free token visitors
/// ([`value_tokens_with`], [`uri_infix_tokens_with`]). One instance per
/// scan loop; the buffers grow to the longest token/infix seen and are
/// reused for every subsequent call.
#[derive(Default)]
pub struct TokenBuffers {
    /// Lower-cased token composition buffer.
    lower: String,
    /// camelCase-spaced URI infix buffer.
    spaced: String,
}

/// Lower-cases `tok` into `buf` and returns the lowered slice. ASCII
/// tokens (the overwhelming majority) are lowered byte-wise with no
/// allocation; anything else goes through `str::to_lowercase` so the
/// result is byte-identical to the iterator-based [`value_tokens`].
fn lower_into<'b>(tok: &str, buf: &'b mut String) -> &'b str {
    buf.clear();
    if tok.is_ascii() {
        buf.push_str(tok);
        buf.make_ascii_lowercase();
    } else {
        buf.push_str(&tok.to_lowercase());
    }
    buf.as_str()
}

/// Visits the blocking tokens of a literal value — exactly the tokens
/// [`value_tokens`] yields, in the same order — without allocating a
/// `String` per token: each token is lower-cased into `buffers` and
/// handed to `f` as a borrowed slice.
pub fn value_tokens_with(value: &str, buffers: &mut TokenBuffers, mut f: impl FnMut(&str)) {
    for tok in value
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| t.len() >= 2)
    {
        let lowered = lower_into(tok, &mut buffers.lower);
        if !is_stop_word(lowered) {
            f(lowered);
        }
    }
}

/// Visits the URI-infix tokens of `uri` — exactly what
/// [`uri_infix_tokens`] yields, in the same order — reusing `buffers`
/// instead of allocating per token.
pub fn uri_infix_tokens_with(uri: &str, buffers: &mut TokenBuffers, f: impl FnMut(&str)) {
    let infix = decompose_uri(uri).infix;
    let mut spaced = std::mem::take(&mut buffers.spaced);
    spaced.clear();
    spaced.reserve(infix.len() + 8);
    let mut prev_lower = false;
    for c in infix.chars() {
        if c.is_uppercase() && prev_lower {
            spaced.push(' ');
        }
        prev_lower = c.is_lowercase() || c.is_ascii_digit();
        spaced.push(c);
    }
    value_tokens_with(&spaced, buffers, f);
    buffers.spaced = spaced;
}

/// The Prefix-Infix(-Suffix) decomposition of an entity URI.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UriDecomposition<'a> {
    /// Scheme + authority + all path segments before the naming segment.
    pub prefix: &'a str,
    /// The entity-naming part (last meaningful path segment or fragment).
    pub infix: &'a str,
    /// Generic trailing part stripped from the infix (extension or generic
    /// segment such as `about`, `html`, `rdf`), empty when absent.
    pub suffix: &'a str,
}

/// Trailing path segments that name a *representation* rather than the
/// entity and are therefore treated as suffix.
const GENERIC_SUFFIX_SEGMENTS: &[&str] = &["about", "html", "rdf", "xml", "json", "page", "data"];

/// Decomposes an entity URI into prefix / infix / suffix.
///
/// Rules (following the Prefix-Infix(-Suffix) blocking literature):
/// 1. A `#fragment`, when present and non-generic, is the infix.
/// 2. Otherwise the last non-generic, non-empty path segment is the infix;
///    trailing generic segments (`about`, `page`, …) and file extensions
///    (`.html`, `.rdf`, …) become the suffix.
/// 3. URIs without any path structure decompose to an empty infix equal to
///    the whole tail after the authority.
pub fn decompose_uri(uri: &str) -> UriDecomposition<'_> {
    // Fragment wins if present.
    if let Some(hash) = uri.rfind('#') {
        let frag = &uri[hash + 1..];
        if !frag.is_empty() && !GENERIC_SUFFIX_SEGMENTS.contains(&frag) {
            return UriDecomposition {
                prefix: &uri[..hash + 1],
                infix: frag,
                suffix: "",
            };
        }
    }
    // Work on the part after the scheme's "://", if any.
    let body_start = uri.find("://").map(|i| i + 3).unwrap_or(0);
    let body = &uri[body_start..];
    let path_start = match body.find('/') {
        Some(i) => body_start + i + 1,
        None => {
            // No path at all: the authority itself is all prefix.
            return UriDecomposition {
                prefix: uri,
                infix: "",
                suffix: "",
            };
        }
    };
    let mut segs: Vec<(usize, &str)> = Vec::new();
    let mut offset = path_start;
    for seg in uri[path_start..].split('/') {
        segs.push((offset, seg));
        offset += seg.len() + 1;
    }
    // Walk back over empty and generic segments: they belong to the suffix.
    let mut end = segs.len();
    while end > 0 {
        let seg = segs[end - 1].1;
        let is_generic =
            seg.is_empty() || GENERIC_SUFFIX_SEGMENTS.contains(&seg.to_lowercase().as_str());
        if is_generic {
            end -= 1;
        } else {
            break;
        }
    }
    if end == 0 {
        return UriDecomposition {
            prefix: &uri[..path_start],
            infix: "",
            suffix: &uri[path_start..],
        };
    }
    let (seg_off, seg) = segs[end - 1];
    // Split a file extension off the naming segment.
    let (infix_len, _ext) = match seg.rfind('.') {
        Some(dot) if dot > 0 && seg.len() - dot <= 6 => (dot, &seg[dot + 1..]),
        _ => (seg.len(), ""),
    };
    UriDecomposition {
        prefix: &uri[..seg_off],
        infix: &uri[seg_off..seg_off + infix_len],
        suffix: &uri[seg_off + infix_len..],
    }
}

/// Tokens of the URI infix, using the same normalisation as value tokens,
/// but also splitting camelCase boundaries (DBpedia-style naming).
pub fn uri_infix_tokens(uri: &str) -> Vec<String> {
    let infix = decompose_uri(uri).infix;
    let mut spaced = String::with_capacity(infix.len() + 8);
    let mut prev_lower = false;
    for c in infix.chars() {
        if c.is_uppercase() && prev_lower {
            spaced.push(' ');
        }
        prev_lower = c.is_lowercase() || c.is_ascii_digit();
        spaced.push(c);
    }
    value_tokens(&spaced).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_tokens_normalise() {
        let toks = value_token_vec("The Palace of Knossos, Crete (1900)");
        assert_eq!(toks, vec!["palace", "knossos", "crete", "1900"]);
    }

    #[test]
    fn value_tokens_drop_short_and_stop() {
        assert!(value_token_vec("a b c").is_empty());
        assert_eq!(value_token_vec("of the ab"), vec!["ab"]);
    }

    #[test]
    fn unicode_values_tokenise() {
        let toks = value_token_vec("Ηράκλειο café");
        assert_eq!(toks, vec!["ηράκλειο", "café"]);
    }

    #[test]
    fn visitor_tokens_match_iterator_tokens() {
        let inputs = [
            "The Palace of Knossos, Crete (1900)",
            "a b c",
            "of the ab",
            "Ηράκλειο café ΣΙΓΜΑΣ",
            "",
            "MixedCASE tokens-with_seps 42",
        ];
        let mut buffers = TokenBuffers::default();
        for input in inputs {
            let mut visited: Vec<String> = Vec::new();
            value_tokens_with(input, &mut buffers, |t| visited.push(t.to_string()));
            assert_eq!(visited, value_token_vec(input), "input: {input:?}");
        }
    }

    #[test]
    fn visitor_uri_tokens_match_iterator_tokens() {
        let uris = [
            "http://yago.org/resource/MikisTheodorakis",
            "http://dbpedia.org/resource/Knossos_Palace_1900",
            "http://example.org/data/places#Knossos_Palace",
            "http://example.org",
        ];
        let mut buffers = TokenBuffers::default();
        for uri in uris {
            let mut visited: Vec<String> = Vec::new();
            uri_infix_tokens_with(uri, &mut buffers, |t| visited.push(t.to_string()));
            assert_eq!(visited, uri_infix_tokens(uri), "uri: {uri}");
        }
    }

    #[test]
    fn decompose_plain_resource_uri() {
        let d = decompose_uri("http://dbpedia.org/resource/Heraklion");
        assert_eq!(d.prefix, "http://dbpedia.org/resource/");
        assert_eq!(d.infix, "Heraklion");
        assert_eq!(d.suffix, "");
    }

    #[test]
    fn decompose_fragment_uri() {
        let d = decompose_uri("http://example.org/data/places#Knossos_Palace");
        assert_eq!(d.infix, "Knossos_Palace");
        assert_eq!(d.prefix, "http://example.org/data/places#");
    }

    #[test]
    fn decompose_strips_generic_suffix() {
        let d = decompose_uri("http://bbc.co.uk/music/artists/Mikis_Theodorakis/about");
        assert_eq!(d.infix, "Mikis_Theodorakis");
        assert_eq!(d.suffix, "/about");
        let d = decompose_uri("http://example.org/people/john.html");
        assert_eq!(d.infix, "john");
        assert_eq!(d.suffix, ".html");
    }

    #[test]
    fn decompose_no_path() {
        let d = decompose_uri("http://example.org");
        assert_eq!(d.infix, "");
        assert_eq!(d.prefix, "http://example.org");
    }

    #[test]
    fn decompose_trailing_slash() {
        let d = decompose_uri("http://example.org/resource/Athens/");
        assert_eq!(d.infix, "Athens");
    }

    #[test]
    fn infix_tokens_split_camel_and_snake() {
        assert_eq!(
            uri_infix_tokens("http://yago.org/resource/MikisTheodorakis"),
            vec!["mikis", "theodorakis"]
        );
        assert_eq!(
            uri_infix_tokens("http://dbpedia.org/resource/Knossos_Palace_1900"),
            vec!["knossos", "palace", "1900"]
        );
    }

    #[test]
    fn prefix_infix_suffix_partition_is_lossless() {
        for uri in [
            "http://dbpedia.org/resource/Heraklion",
            "http://bbc.co.uk/music/artists/Mikis_Theodorakis/about",
            "http://example.org/people/john.html",
            "http://example.org/data/places#Knossos_Palace",
            "http://example.org",
            "http://example.org/resource/Athens/",
        ] {
            let d = decompose_uri(uri);
            assert_eq!(
                format!("{}{}{}", d.prefix, d.infix, d.suffix),
                uri,
                "lossy: {uri}"
            );
        }
    }
}
