//! RDF terms and triples.

use std::fmt;

/// A literal value with optional language tag or datatype IRI.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Literal {
    /// The lexical form (unescaped).
    pub value: String,
    /// `@lang` tag, if any (mutually exclusive with `datatype` in N-Triples).
    pub lang: Option<String>,
    /// `^^<datatype>` IRI, if any.
    pub datatype: Option<String>,
}

impl Literal {
    /// A plain literal with neither language tag nor datatype.
    pub fn plain(value: impl Into<String>) -> Self {
        Self {
            value: value.into(),
            lang: None,
            datatype: None,
        }
    }

    /// A language-tagged literal.
    pub fn lang_tagged(value: impl Into<String>, lang: impl Into<String>) -> Self {
        Self {
            value: value.into(),
            lang: Some(lang.into()),
            datatype: None,
        }
    }

    /// A typed literal.
    pub fn typed(value: impl Into<String>, datatype: impl Into<String>) -> Self {
        Self {
            value: value.into(),
            lang: None,
            datatype: Some(datatype.into()),
        }
    }
}

/// An RDF term in subject or object position.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Term {
    /// An IRI reference, stored without the angle brackets.
    Iri(String),
    /// A blank node, stored without the `_:` prefix.
    Blank(String),
    /// A literal.
    Literal(Literal),
}

impl Term {
    /// Constructor shorthand for IRIs.
    pub fn iri(s: impl Into<String>) -> Self {
        Term::Iri(s.into())
    }

    /// Constructor shorthand for plain literals.
    pub fn literal(s: impl Into<String>) -> Self {
        Term::Literal(Literal::plain(s))
    }

    /// The IRI string, if this term is an IRI.
    pub fn as_iri(&self) -> Option<&str> {
        match self {
            Term::Iri(s) => Some(s),
            _ => None,
        }
    }

    /// The literal lexical form, if this term is a literal.
    pub fn as_literal(&self) -> Option<&str> {
        match self {
            Term::Literal(l) => Some(&l.value),
            _ => None,
        }
    }

    /// Whether the term may appear in subject position (IRI or blank node).
    pub fn is_subject(&self) -> bool {
        !matches!(self, Term::Literal(_))
    }
}

impl fmt::Display for Term {
    /// N-Triples surface syntax (with escaping for literals).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(s) => write!(f, "<{s}>"),
            Term::Blank(s) => write!(f, "_:{s}"),
            Term::Literal(l) => {
                write!(f, "\"{}\"", crate::ntriples::escape_literal(&l.value))?;
                if let Some(lang) = &l.lang {
                    write!(f, "@{lang}")
                } else if let Some(dt) = &l.datatype {
                    write!(f, "^^<{dt}>")
                } else {
                    Ok(())
                }
            }
        }
    }
}

/// A single RDF statement.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Triple {
    /// Subject: IRI or blank node.
    pub subject: Term,
    /// Predicate: always an IRI in RDF; stored as the IRI string.
    pub predicate: String,
    /// Object: any term.
    pub object: Term,
}

impl Triple {
    /// Builds a triple; no validation beyond types is performed.
    pub fn new(subject: Term, predicate: impl Into<String>, object: Term) -> Self {
        Self {
            subject,
            predicate: predicate.into(),
            object,
        }
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} <{}> {} .", self.subject, self.predicate, self.object)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_constructors() {
        assert_eq!(Literal::plain("x").lang, None);
        assert_eq!(Literal::lang_tagged("x", "en").lang.as_deref(), Some("en"));
        assert_eq!(
            Literal::typed("3", "http://www.w3.org/2001/XMLSchema#int")
                .datatype
                .as_deref(),
            Some("http://www.w3.org/2001/XMLSchema#int")
        );
    }

    #[test]
    fn term_accessors() {
        let iri = Term::iri("http://example.org/a");
        assert_eq!(iri.as_iri(), Some("http://example.org/a"));
        assert_eq!(iri.as_literal(), None);
        assert!(iri.is_subject());
        let lit = Term::literal("hello");
        assert_eq!(lit.as_literal(), Some("hello"));
        assert!(!lit.is_subject());
        assert!(Term::Blank("b0".into()).is_subject());
    }

    #[test]
    fn display_matches_ntriples_syntax() {
        let t = Triple::new(
            Term::iri("http://e.org/s"),
            "http://e.org/p",
            Term::Literal(Literal::lang_tagged("caf\u{e9} \"bar\"", "fr")),
        );
        assert_eq!(
            t.to_string(),
            "<http://e.org/s> <http://e.org/p> \"caf\u{e9} \\\"bar\\\"\"@fr ."
        );
        let t2 = Triple::new(
            Term::Blank("b1".into()),
            "http://e.org/p",
            Term::iri("http://e.org/o"),
        );
        assert_eq!(t2.to_string(), "_:b1 <http://e.org/p> <http://e.org/o> .");
    }

    #[test]
    fn typed_literal_display() {
        let t = Term::Literal(Literal::typed(
            "42",
            "http://www.w3.org/2001/XMLSchema#integer",
        ));
        assert_eq!(
            t.to_string(),
            "\"42\"^^<http://www.w3.org/2001/XMLSchema#integer>"
        );
    }
}
