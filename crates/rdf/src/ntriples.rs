//! Line-based N-Triples parsing and serialisation.
//!
//! Supports the subset of the W3C N-Triples grammar that LOD dumps actually
//! use: IRI refs, blank nodes, plain / language-tagged / typed literals,
//! `#` comments and blank lines, and the standard string escapes
//! (`\" \\ \n \r \t \uXXXX \UXXXXXXXX`).

use crate::term::{Literal, Term, Triple};
use std::fmt;

/// Parse error with 1-based line number and a human-readable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number in the input.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "N-Triples parse error at line {}: {}",
            self.line, self.reason
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a full N-Triples document, returning every triple.
pub fn parse_document(input: &str) -> Result<Vec<Triple>, ParseError> {
    let mut out = Vec::new();
    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_line(line, line_no)?);
    }
    Ok(out)
}

/// Serialises triples as an N-Triples document (one statement per line,
/// trailing newline).
pub fn write_document(triples: &[Triple]) -> String {
    let mut s = String::with_capacity(triples.len() * 80);
    for t in triples {
        s.push_str(&t.to_string());
        s.push('\n');
    }
    s
}

/// Escapes a literal lexical form for N-Triples output.
pub fn escape_literal(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out
}

struct Cursor<'a> {
    rest: &'a str,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn err(&self, reason: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            reason: reason.into(),
        }
    }

    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start_matches([' ', '\t']);
    }

    fn expect(&mut self, c: char) -> Result<(), ParseError> {
        if let Some(r) = self.rest.strip_prefix(c) {
            self.rest = r;
            Ok(())
        } else {
            Err(self.err(format!(
                "expected '{c}', found {:?}",
                self.rest.chars().next()
            )))
        }
    }

    fn parse_iri(&mut self) -> Result<String, ParseError> {
        self.expect('<')?;
        let end = self
            .rest
            .find('>')
            .ok_or_else(|| self.err("unterminated IRI (missing '>')"))?;
        let iri = &self.rest[..end];
        if iri.contains(char::is_whitespace) {
            return Err(self.err("IRI contains whitespace"));
        }
        self.rest = &self.rest[end + 1..];
        Ok(iri.to_string())
    }

    fn parse_blank(&mut self) -> Result<String, ParseError> {
        let r = self
            .rest
            .strip_prefix("_:")
            .ok_or_else(|| self.err("expected blank node '_:'"))?;
        let end = r
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.'))
            .unwrap_or(r.len());
        if end == 0 {
            return Err(self.err("empty blank node label"));
        }
        let label = r[..end].trim_end_matches('.');
        if label.is_empty() {
            return Err(self.err("empty blank node label"));
        }
        self.rest = &r[label.len()..];
        Ok(label.to_string())
    }

    fn parse_literal(&mut self) -> Result<Literal, ParseError> {
        self.expect('"')?;
        let mut value = String::new();
        let mut chars = self.rest.char_indices();
        let mut consumed = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    consumed = Some(i + 1);
                    break;
                }
                '\\' => {
                    let (_, esc) = chars
                        .next()
                        .ok_or_else(|| self.err("dangling escape at end of literal"))?;
                    match esc {
                        '"' => value.push('"'),
                        '\\' => value.push('\\'),
                        'n' => value.push('\n'),
                        'r' => value.push('\r'),
                        't' => value.push('\t'),
                        'u' | 'U' => {
                            let need = if esc == 'u' { 4 } else { 8 };
                            let mut hex = String::with_capacity(need);
                            for _ in 0..need {
                                let (_, h) = chars
                                    .next()
                                    .ok_or_else(|| self.err("truncated \\u escape"))?;
                                hex.push(h);
                            }
                            let cp = u32::from_str_radix(&hex, 16)
                                .map_err(|_| self.err(format!("bad hex escape \\{esc}{hex}")))?;
                            value.push(
                                char::from_u32(cp).ok_or_else(|| {
                                    self.err(format!("invalid code point U+{hex}"))
                                })?,
                            );
                        }
                        other => return Err(self.err(format!("unknown escape '\\{other}'"))),
                    }
                }
                other => value.push(other),
            }
        }
        let consumed =
            consumed.ok_or_else(|| self.err("unterminated literal (missing closing '\"')"))?;
        self.rest = &self.rest[consumed..];
        // Optional language tag or datatype.
        if let Some(r) = self.rest.strip_prefix('@') {
            let end = r
                .find(|c: char| !(c.is_ascii_alphanumeric() || c == '-'))
                .unwrap_or(r.len());
            if end == 0 {
                return Err(self.err("empty language tag"));
            }
            let lang = r[..end].to_string();
            self.rest = &r[end..];
            Ok(Literal {
                value,
                lang: Some(lang),
                datatype: None,
            })
        } else if let Some(r) = self.rest.strip_prefix("^^") {
            self.rest = r;
            let dt = self.parse_iri()?;
            Ok(Literal {
                value,
                lang: None,
                datatype: Some(dt),
            })
        } else {
            Ok(Literal::plain(value))
        }
    }

    fn parse_term(&mut self) -> Result<Term, ParseError> {
        match self.rest.chars().next() {
            Some('<') => Ok(Term::Iri(self.parse_iri()?)),
            Some('_') => Ok(Term::Blank(self.parse_blank()?)),
            Some('"') => Ok(Term::Literal(self.parse_literal()?)),
            other => Err(self.err(format!("expected term, found {other:?}"))),
        }
    }
}

/// Parses a single (already trimmed, non-comment) N-Triples statement.
pub fn parse_line(line: &str, line_no: usize) -> Result<Triple, ParseError> {
    let mut c = Cursor {
        rest: line,
        line: line_no,
    };
    c.skip_ws();
    let subject = c.parse_term()?;
    if !subject.is_subject() {
        return Err(c.err("literal in subject position"));
    }
    c.skip_ws();
    let predicate = c.parse_iri()?;
    c.skip_ws();
    let object = c.parse_term()?;
    c.skip_ws();
    c.expect('.')?;
    c.skip_ws();
    if !c.rest.is_empty() && !c.rest.starts_with('#') {
        return Err(c.err(format!("trailing content after '.': {:?}", c.rest)));
    }
    Ok(Triple {
        subject,
        predicate,
        object,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_iri_triple() {
        let t = parse_line("<http://a> <http://p> <http://b> .", 1).unwrap();
        assert_eq!(t.subject, Term::iri("http://a"));
        assert_eq!(t.predicate, "http://p");
        assert_eq!(t.object, Term::iri("http://b"));
    }

    #[test]
    fn parses_literals_with_tags() {
        let t = parse_line("<http://a> <http://p> \"hi\"@en .", 1).unwrap();
        assert_eq!(t.object, Term::Literal(Literal::lang_tagged("hi", "en")));
        let t = parse_line(
            "<http://a> <http://p> \"5\"^^<http://www.w3.org/2001/XMLSchema#int> .",
            1,
        )
        .unwrap();
        assert_eq!(
            t.object,
            Term::Literal(Literal::typed("5", "http://www.w3.org/2001/XMLSchema#int"))
        );
    }

    #[test]
    fn parses_escapes() {
        let t = parse_line(r#"<http://a> <http://p> "a\"b\\c\ndA" ."#, 1).unwrap();
        assert_eq!(t.object.as_literal(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn parses_blank_nodes() {
        let t = parse_line("_:b1 <http://p> _:b2 .", 1).unwrap();
        assert_eq!(t.subject, Term::Blank("b1".into()));
        assert_eq!(t.object, Term::Blank("b2".into()));
    }

    #[test]
    fn document_skips_comments_and_blanks() {
        let doc =
            "# header\n\n<http://a> <http://p> \"x\" .\n  # tail\n<http://b> <http://p> \"y\" .\n";
        let ts = parse_document(doc).unwrap();
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn round_trip_preserves_triples() {
        let doc = concat!(
            "<http://a> <http://p> \"quote \\\" backslash \\\\ tab\\t\"@en .\n",
            "<http://a> <http://q> <http://b> .\n",
            "_:n0 <http://p> \"42\"^^<http://www.w3.org/2001/XMLSchema#int> .\n",
        );
        let ts = parse_document(doc).unwrap();
        let out = write_document(&ts);
        let ts2 = parse_document(&out).unwrap();
        assert_eq!(ts, ts2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let doc = "<http://a> <http://p> \"ok\" .\n<http://a> <http://p> \"unterminated .\n";
        let err = parse_document(doc).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.reason.contains("unterminated"));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_line("<http://a> <http://p> .", 1).is_err());
        assert!(parse_line("\"lit\" <http://p> <http://o> .", 1).is_err());
        assert!(parse_line("<http://a> <http://p> <http://o>", 1).is_err());
        assert!(parse_line("<http://a> <http://p> <http://o> . junk", 1).is_err());
        assert!(parse_line("<http://a b> <http://p> <http://o> .", 1).is_err());
    }

    #[test]
    fn trailing_comment_after_dot_is_ok() {
        assert!(parse_line("<http://a> <http://p> <http://o> . # note", 1).is_ok());
    }
}
