//! A Turtle (Terse RDF Triple Language) parser — the subset real LOD dumps
//! exercise.
//!
//! N-Triples is what the pipeline round-trips internally, but most Web of
//! Data KBs publish Turtle. Supported here:
//!
//! * `@prefix` / `@base` directives (and SPARQL-style `PREFIX`/`BASE`),
//! * prefixed names (`dbo:city`), IRIs (`<http://…>`), relative IRIs
//!   against the base,
//! * the `a` keyword (`rdf:type`),
//! * predicate lists (`;`) and object lists (`,`),
//! * blank-node labels (`_:b1`) and anonymous blank nodes (`[]`, including
//!   nested property lists),
//! * string literals with escapes, language tags and datatypes, plus bare
//!   integers / decimals / booleans (typed per the Turtle spec),
//! * `#` comments.
//!
//! Out of scope (not used by the ER workloads): collections `( … )`,
//! triple-quoted long strings, and numeric exponent forms.

use crate::term::{Literal, Term, Triple};
use std::collections::HashMap;

/// Turtle parse failure with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TurtleError {
    /// 1-based line of the failure.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for TurtleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "turtle parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for TurtleError {}

const XSD_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
const XSD_DECIMAL: &str = "http://www.w3.org/2001/XMLSchema#decimal";
const XSD_BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";
const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// Parses a Turtle document into triples.
pub fn parse_turtle(input: &str) -> Result<Vec<Triple>, TurtleError> {
    Parser::new(input).parse()
}

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    prefixes: HashMap<String, String>,
    base: String,
    triples: Vec<Triple>,
    next_bnode: usize,
    _input: &'a str,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Self {
            chars: input.chars().collect(),
            pos: 0,
            line: 1,
            prefixes: HashMap::new(),
            base: String::new(),
            triples: Vec::new(),
            next_bnode: 0,
            _input: input,
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, TurtleError> {
        Err(TurtleError {
            line: self.line,
            message: message.into(),
        })
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if let Some(ch) = c {
            self.pos += 1;
            if ch == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('#') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn eat(&mut self, expected: char) -> Result<(), TurtleError> {
        self.skip_ws();
        match self.bump() {
            Some(c) if c == expected => Ok(()),
            Some(c) => self.err(format!("expected {expected:?}, found {c:?}")),
            None => self.err(format!("expected {expected:?}, found end of input")),
        }
    }

    fn starts_with_keyword(&self, kw: &str) -> bool {
        let rest: String = self.chars[self.pos..]
            .iter()
            .take(kw.len())
            .collect::<String>()
            .to_ascii_lowercase();
        rest == kw
    }

    fn parse(mut self) -> Result<Vec<Triple>, TurtleError> {
        loop {
            self.skip_ws();
            if self.peek().is_none() {
                return Ok(self.triples);
            }
            if self.starts_with_keyword("@prefix") || self.starts_with_keyword("prefix") {
                self.parse_prefix()?;
            } else if self.starts_with_keyword("@base") || self.starts_with_keyword("base") {
                self.parse_base()?;
            } else {
                self.parse_statement()?;
            }
        }
    }

    fn parse_prefix(&mut self) -> Result<(), TurtleError> {
        let at_form = self.peek() == Some('@');
        // Consume keyword.
        for _ in 0.."prefix".len() + usize::from(at_form) {
            self.bump();
        }
        self.skip_ws();
        // Prefix label up to ':'.
        let mut label = String::new();
        while let Some(c) = self.peek() {
            if c == ':' {
                break;
            }
            if c.is_whitespace() {
                return self.err("prefix label must end with ':'");
            }
            label.push(c);
            self.bump();
        }
        self.eat(':')?;
        self.skip_ws();
        let iri = self.parse_iri_ref()?;
        self.prefixes.insert(label, iri);
        if at_form {
            self.eat('.')?;
        } else {
            // SPARQL form: optional terminating dot is NOT allowed; but
            // tolerate trailing whitespace only.
        }
        Ok(())
    }

    fn parse_base(&mut self) -> Result<(), TurtleError> {
        let at_form = self.peek() == Some('@');
        for _ in 0.."base".len() + usize::from(at_form) {
            self.bump();
        }
        self.skip_ws();
        self.base = self.parse_iri_ref()?;
        if at_form {
            self.eat('.')?;
        }
        Ok(())
    }

    fn parse_statement(&mut self) -> Result<(), TurtleError> {
        let subject = self.parse_subject()?;
        self.parse_predicate_object_list(&subject)?;
        self.eat('.')
    }

    fn parse_subject(&mut self) -> Result<Term, TurtleError> {
        self.skip_ws();
        match self.peek() {
            Some('<') => Ok(Term::Iri(self.parse_iri_ref()?)),
            Some('_') => self.parse_bnode_label(),
            Some('[') => self.parse_anon_bnode(),
            Some(_) => {
                let iri = self.parse_prefixed_name()?;
                Ok(Term::Iri(iri))
            }
            None => self.err("expected subject, found end of input"),
        }
    }

    fn parse_predicate_object_list(&mut self, subject: &Term) -> Result<(), TurtleError> {
        loop {
            self.skip_ws();
            let predicate = self.parse_predicate()?;
            loop {
                let object = self.parse_object()?;
                self.triples
                    .push(Triple::new(subject.clone(), predicate.clone(), object));
                self.skip_ws();
                if self.peek() == Some(',') {
                    self.bump();
                } else {
                    break;
                }
            }
            self.skip_ws();
            if self.peek() == Some(';') {
                self.bump();
                self.skip_ws();
                // A dangling ';' before '.' or ']' is legal Turtle.
                if matches!(self.peek(), Some('.') | Some(']')) {
                    return Ok(());
                }
            } else {
                return Ok(());
            }
        }
    }

    fn parse_predicate(&mut self) -> Result<String, TurtleError> {
        self.skip_ws();
        match self.peek() {
            Some('<') => self.parse_iri_ref(),
            Some('a') => {
                // 'a' keyword iff followed by whitespace or '<' or '['.
                let next = self.chars.get(self.pos + 1).copied();
                if next.is_none_or(|c| c.is_whitespace() || c == '<' || c == '[') {
                    self.bump();
                    Ok(RDF_TYPE.to_string())
                } else {
                    self.parse_prefixed_name()
                }
            }
            Some(_) => self.parse_prefixed_name(),
            None => self.err("expected predicate, found end of input"),
        }
    }

    fn parse_object(&mut self) -> Result<Term, TurtleError> {
        self.skip_ws();
        match self.peek() {
            Some('<') => Ok(Term::Iri(self.parse_iri_ref()?)),
            Some('"') | Some('\'') => self.parse_literal(),
            Some('_') => self.parse_bnode_label(),
            Some('[') => self.parse_anon_bnode(),
            Some(c) if c.is_ascii_digit() || c == '+' || c == '-' => self.parse_numeric(),
            Some('t') | Some('f')
                if self.starts_with_keyword("true") || self.starts_with_keyword("false") =>
            {
                let word = if self.starts_with_keyword("true") {
                    "true"
                } else {
                    "false"
                };
                for _ in 0..word.len() {
                    self.bump();
                }
                Ok(Term::Literal(Literal::typed(word, XSD_BOOLEAN)))
            }
            Some(_) => Ok(Term::Iri(self.parse_prefixed_name()?)),
            None => self.err("expected object, found end of input"),
        }
    }

    fn parse_iri_ref(&mut self) -> Result<String, TurtleError> {
        self.skip_ws();
        if self.bump() != Some('<') {
            return self.err("expected '<'");
        }
        let mut iri = String::new();
        loop {
            match self.bump() {
                Some('>') => break,
                Some('\n') => return self.err("newline inside IRI"),
                Some(c) => iri.push(c),
                None => return self.err("unterminated IRI"),
            }
        }
        // Resolve relative IRIs against the base (string concatenation —
        // sufficient for the dump-style bases the workloads use).
        if !iri.contains(':') && !self.base.is_empty() {
            Ok(format!("{}{}", self.base, iri))
        } else {
            Ok(iri)
        }
    }

    fn parse_prefixed_name(&mut self) -> Result<String, TurtleError> {
        self.skip_ws();
        let mut prefix = String::new();
        while let Some(c) = self.peek() {
            if c == ':' {
                break;
            }
            if !(c.is_alphanumeric() || c == '_' || c == '-' || c == '.') {
                return self.err(format!("unexpected character {c:?} in prefixed name"));
            }
            prefix.push(c);
            self.bump();
        }
        if self.peek() != Some(':') {
            return self.err("expected ':' in prefixed name");
        }
        self.bump();
        let mut local = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' || c == '%' {
                local.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // A trailing '.' terminates the statement, not the name.
        while local.ends_with('.') {
            local.pop();
            self.pos -= 1;
        }
        match self.prefixes.get(&prefix) {
            Some(ns) => Ok(format!("{ns}{local}")),
            None => self.err(format!("undeclared prefix {prefix:?}")),
        }
    }

    fn parse_bnode_label(&mut self) -> Result<Term, TurtleError> {
        // "_:" label
        self.bump(); // '_'
        if self.bump() != Some(':') {
            return self.err("expected ':' after '_'");
        }
        let mut label = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' || c == '-' {
                label.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if label.is_empty() {
            return self.err("empty blank node label");
        }
        Ok(Term::Blank(label))
    }

    fn parse_anon_bnode(&mut self) -> Result<Term, TurtleError> {
        self.eat('[')?;
        let label = format!("anon{}", self.next_bnode);
        self.next_bnode += 1;
        let node = Term::Blank(label);
        self.skip_ws();
        if self.peek() != Some(']') {
            self.parse_predicate_object_list(&node)?;
        }
        self.eat(']')?;
        Ok(node)
    }

    fn parse_literal(&mut self) -> Result<Term, TurtleError> {
        let quote = self.bump().expect("caller checked");
        let mut value = String::new();
        loop {
            match self.bump() {
                Some(c) if c == quote => break,
                Some('\\') => match self.bump() {
                    Some('n') => value.push('\n'),
                    Some('t') => value.push('\t'),
                    Some('r') => value.push('\r'),
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('\'') => value.push('\''),
                    Some('u') => {
                        let hex: String = (0..4).filter_map(|_| self.bump()).collect();
                        let cp = u32::from_str_radix(&hex, 16)
                            .ok()
                            .and_then(char::from_u32)
                            .ok_or_else(|| TurtleError {
                                line: self.line,
                                message: format!("bad \\u escape {hex:?}"),
                            })?;
                        value.push(cp);
                    }
                    Some(other) => return self.err(format!("unknown escape \\{other}")),
                    None => return self.err("unterminated escape"),
                },
                Some('\n') => return self.err("newline in single-quoted literal"),
                Some(c) => value.push(c),
                None => return self.err("unterminated literal"),
            }
        }
        // Optional language tag or datatype.
        match self.peek() {
            Some('@') => {
                self.bump();
                let mut lang = String::new();
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == '-' {
                        lang.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                Ok(Term::Literal(Literal::lang_tagged(value, lang)))
            }
            Some('^') => {
                self.bump();
                if self.bump() != Some('^') {
                    return self.err("expected '^^'");
                }
                let datatype = match self.peek() {
                    Some('<') => self.parse_iri_ref()?,
                    _ => self.parse_prefixed_name()?,
                };
                Ok(Term::Literal(Literal::typed(value, datatype)))
            }
            _ => Ok(Term::Literal(Literal::plain(value))),
        }
    }

    fn parse_numeric(&mut self) -> Result<Term, TurtleError> {
        let mut text = String::new();
        if matches!(self.peek(), Some('+') | Some('-')) {
            text.push(self.bump().expect("sign"));
        }
        let mut saw_dot = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                text.push(c);
                self.bump();
            } else if c == '.' && !saw_dot {
                // A dot is part of the number only if a digit follows;
                // otherwise it terminates the statement.
                if self
                    .chars
                    .get(self.pos + 1)
                    .is_some_and(|d| d.is_ascii_digit())
                {
                    saw_dot = true;
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            } else {
                break;
            }
        }
        if text.is_empty() || text == "+" || text == "-" {
            return self.err("malformed numeric literal");
        }
        let datatype = if saw_dot { XSD_DECIMAL } else { XSD_INTEGER };
        Ok(Term::Literal(Literal::typed(text, datatype)))
    }
}

/// Serialises triples as compact Turtle.
///
/// `prefixes` maps prefix labels to namespace IRIs; IRIs starting with a
/// registered namespace are written as prefixed names (when the local part
/// is a simple name), everything else as `<…>`. Triples are grouped by
/// subject with `;`-separated predicate lists and `,`-separated object
/// lists; `rdf:type` is written as `a`. The output round-trips through
/// [`parse_turtle`].
pub fn write_turtle(triples: &[Triple], prefixes: &[(&str, &str)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    // lint:allow(hash-order-leak): `prefixes` is the caller-ordered slice argument
    for (label, ns) in prefixes {
        let _ = writeln!(out, "@prefix {label}: <{ns}> .");
    }
    if !prefixes.is_empty() && !triples.is_empty() {
        out.push('\n');
    }

    let shorten = |iri: &str| -> String {
        // lint:allow(hash-order-leak): `prefixes` is the caller-ordered slice argument
        for (label, ns) in prefixes {
            if let Some(local) = iri.strip_prefix(ns) {
                let simple = !local.is_empty()
                    && local
                        .chars()
                        .all(|c| c.is_alphanumeric() || c == '_' || c == '-')
                    && !local.ends_with('.');
                if simple {
                    return format!("{label}:{local}");
                }
            }
        }
        format!("<{iri}>")
    };
    let term_str = |t: &Term| -> String {
        match t {
            Term::Iri(iri) => shorten(iri),
            Term::Blank(b) => format!("_:{b}"),
            Term::Literal(l) => {
                let escaped = l
                    .value
                    .replace('\\', "\\\\")
                    .replace('"', "\\\"")
                    .replace('\n', "\\n")
                    .replace('\r', "\\r")
                    .replace('\t', "\\t");
                match (&l.lang, &l.datatype) {
                    (Some(lang), _) => format!("\"{escaped}\"@{lang}"),
                    (None, Some(dt)) => format!("\"{escaped}\"^^{}", shorten(dt)),
                    (None, None) => format!("\"{escaped}\""),
                }
            }
        }
    };

    // Group by subject, preserving first-appearance order.
    let mut order: Vec<&Term> = Vec::new();
    let mut groups: std::collections::HashMap<&Term, Vec<&Triple>> =
        std::collections::HashMap::new();
    for t in triples {
        let entry = groups.entry(&t.subject).or_default();
        if entry.is_empty() {
            order.push(&t.subject);
        }
        entry.push(t);
    }
    for subject in order {
        let group = &groups[subject];
        let _ = write!(out, "{} ", term_str(subject));
        // Predicate sub-groups, preserving order.
        let mut pred_order: Vec<&str> = Vec::new();
        let mut by_pred: std::collections::HashMap<&str, Vec<&Term>> =
            std::collections::HashMap::new();
        for t in group {
            let entry = by_pred.entry(t.predicate.as_str()).or_default();
            if entry.is_empty() {
                pred_order.push(&t.predicate);
            }
            entry.push(&t.object);
        }
        for (pi, pred) in pred_order.iter().enumerate() {
            let pred_text = if *pred == RDF_TYPE {
                "a".to_string()
            } else {
                shorten(pred)
            };
            let objects: Vec<String> = by_pred[pred].iter().map(|o| term_str(o)).collect();
            let _ = write!(out, "{pred_text} {}", objects.join(" , "));
            if pi + 1 < pred_order.len() {
                out.push_str(" ;\n    ");
            }
        }
        out.push_str(" .\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triples(doc: &str) -> Vec<Triple> {
        parse_turtle(doc).expect("document parses")
    }

    #[test]
    fn basic_triple_with_prefix() {
        let doc = "@prefix dbo: <http://dbpedia.org/ontology/> .\n\
                   <http://x/a> dbo:name \"Heraklion\" .";
        let t = triples(doc);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].predicate, "http://dbpedia.org/ontology/name");
        assert_eq!(t[0].object.as_literal(), Some("Heraklion"));
    }

    #[test]
    fn sparql_style_prefix_without_dot() {
        let doc = "PREFIX ex: <http://e/>\nex:a ex:p ex:b .";
        let t = triples(doc);
        assert_eq!(t[0].subject.as_iri(), Some("http://e/a"));
        assert_eq!(t[0].object.as_iri(), Some("http://e/b"));
    }

    #[test]
    fn a_keyword_is_rdf_type() {
        let doc = "@prefix ex: <http://e/> .\nex:x a ex:City .";
        let t = triples(doc);
        assert_eq!(t[0].predicate, RDF_TYPE);
    }

    #[test]
    fn predicate_and_object_lists() {
        let doc = "@prefix ex: <http://e/> .\n\
                   ex:a ex:p ex:b , ex:c ;\n\
                        ex:q \"v\" ;\n\
                        .";
        let t = triples(doc);
        assert_eq!(t.len(), 3);
        assert!(t.iter().all(|x| x.subject.as_iri() == Some("http://e/a")));
        assert_eq!(t[0].object.as_iri(), Some("http://e/b"));
        assert_eq!(t[1].object.as_iri(), Some("http://e/c"));
        assert_eq!(t[2].object.as_literal(), Some("v"));
    }

    #[test]
    fn language_tags_and_datatypes() {
        let doc = "@prefix x: <http://x/> .\n\
                   x:a x:l \"πόλη\"@el .\n\
                   x:a x:n \"42\"^^<http://www.w3.org/2001/XMLSchema#int> .";
        let t = triples(doc);
        match &t[0].object {
            Term::Literal(l) => assert_eq!(l.lang.as_deref(), Some("el")),
            other => panic!("expected literal, got {other:?}"),
        }
        match &t[1].object {
            Term::Literal(l) => {
                assert_eq!(
                    l.datatype.as_deref(),
                    Some("http://www.w3.org/2001/XMLSchema#int")
                )
            }
            other => panic!("expected literal, got {other:?}"),
        }
    }

    #[test]
    fn bare_numerics_and_booleans() {
        let doc = "@prefix x: <http://x/> .\n\
                   x:a x:pop 173450 .\n\
                   x:a x:lat 35.34 .\n\
                   x:a x:capital true .";
        let t = triples(doc);
        let dt = |i: usize| match &t[i].object {
            Term::Literal(l) => l.datatype.clone().unwrap(),
            _ => panic!(),
        };
        assert_eq!(dt(0), XSD_INTEGER);
        assert_eq!(dt(1), XSD_DECIMAL);
        assert_eq!(dt(2), XSD_BOOLEAN);
    }

    #[test]
    fn blank_nodes_labeled_and_anonymous() {
        let doc = "@prefix x: <http://x/> .\n\
                   _:b1 x:p x:a .\n\
                   x:a x:q [ x:r \"nested\" ] .";
        let t = triples(doc);
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].subject, Term::Blank("b1".into()));
        // The anonymous node appears as object of x:q and subject of x:r.
        let anon = match &t[2].object {
            Term::Blank(b) => b.clone(),
            other => panic!("expected blank object, got {other:?}"),
        };
        assert!(t
            .iter()
            .any(|x| x.subject == Term::Blank(anon.clone())
                && x.object.as_literal() == Some("nested")));
    }

    #[test]
    fn base_resolves_relative_iris() {
        let doc = "@base <http://base.org/> .\n<rel> <p:abs> <other> .";
        let t = triples(doc);
        assert_eq!(t[0].subject.as_iri(), Some("http://base.org/rel"));
        assert_eq!(t[0].predicate, "p:abs", "absolute IRIs are untouched");
        assert_eq!(t[0].object.as_iri(), Some("http://base.org/other"));
    }

    #[test]
    fn comments_are_skipped() {
        let doc = "# leading comment\n@prefix x: <http://x/> . # trailing\nx:a x:p x:b . # end";
        assert_eq!(triples(doc).len(), 1);
    }

    #[test]
    fn escapes_in_literals() {
        let doc = "@prefix x: <http://x/> .\nx:a x:p \"line\\nbreak \\\"quoted\\\" \\u0041\" .";
        let t = triples(doc);
        assert_eq!(t[0].object.as_literal(), Some("line\nbreak \"quoted\" A"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let doc = "@prefix x: <http://x/> .\nx:a x:p undeclared:b .";
        let err = parse_turtle(doc).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("undeclared"));
    }

    #[test]
    fn unterminated_constructs_fail_cleanly() {
        assert!(parse_turtle("<http://x ").is_err());
        assert!(parse_turtle("@prefix x: <http://x/> .\nx:a x:p \"open").is_err());
        assert!(parse_turtle("@prefix x: <http://x/> .\nx:a x:p x:b ").is_err());
    }

    #[test]
    fn empty_and_comment_only_documents() {
        assert!(triples("").is_empty());
        assert!(triples("# nothing here\n\n").is_empty());
    }

    #[test]
    fn writer_round_trips_through_parser() {
        let doc = "@prefix x: <http://x/> .\n\
                   x:a a x:City ;\n       x:p x:b , x:c ;\n       x:l \"v\"@el .\n\
                   _:b1 x:q \"1.5\"^^<http://www.w3.org/2001/XMLSchema#decimal> .";
        let original = triples(doc);
        let written = write_turtle(&original, &[("x", "http://x/")]);
        let reparsed = triples(&written);
        assert_eq!(original, reparsed, "written form:\n{written}");
    }

    #[test]
    fn writer_groups_subjects_and_uses_a() {
        let doc = "@prefix x: <http://x/> .\nx:s a x:T .\nx:s x:p \"v\" .";
        let written = write_turtle(&triples(doc), &[("x", "http://x/")]);
        assert_eq!(
            written.matches("x:s").count(),
            1,
            "one subject group:\n{written}"
        );
        assert!(written.contains(" a x:T"), "{written}");
        assert!(written.contains(';'), "{written}");
    }

    #[test]
    fn writer_escapes_literals() {
        let t = vec![Triple::new(
            Term::iri("http://x/s"),
            "http://x/p",
            Term::literal("say \"hi\"\nplease"),
        )];
        let written = write_turtle(&t, &[]);
        let reparsed = triples(&written);
        assert_eq!(reparsed[0].object.as_literal(), Some("say \"hi\"\nplease"));
    }

    #[test]
    fn writer_falls_back_to_angle_brackets() {
        let t = vec![Triple::new(
            Term::iri("http://elsewhere/with space.x."),
            "http://x/p",
            Term::iri("http://x/ok"),
        )];
        let written = write_turtle(&t, &[("x", "http://x/")]);
        assert!(
            written.contains("<http://elsewhere/with space.x.>"),
            "{written}"
        );
        assert!(written.contains("x:ok"), "{written}");
    }

    #[test]
    fn equivalent_to_ntriples_for_shared_subset() {
        let nt = "<http://x/a> <http://x/p> \"v\" .\n<http://x/a> <http://x/q> <http://x/b> .\n";
        let from_nt = crate::ntriples::parse_document(nt).unwrap();
        let from_ttl = triples(nt);
        assert_eq!(from_nt, from_ttl, "Turtle is a superset of N-Triples");
    }
}
