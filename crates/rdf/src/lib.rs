//! Minimal RDF substrate for the MinoanER reproduction.
//!
//! The paper resolves entities "described by linked data in the Web (e.g.,
//! in RDF)". Mature RDF stacks are not available in this environment, so
//! this crate implements exactly the subset the ER algorithms exercise:
//!
//! * [`term`] — RDF terms (IRIs, literals, blank nodes) and triples.
//! * [`ntriples`] — a line-based N-Triples parser and serialiser, enough to
//!   round-trip the synthetic KBs to disk.
//! * [`tokenize`] — schema-agnostic tokenisation of literal values and the
//!   Prefix-Infix(-Suffix) decomposition of entity URIs used by blocking.
//! * [`dataset`] — the entity-centric view: descriptions (one per subject),
//!   knowledge bases, and the cross-description neighbour graph that the
//!   progressive update phase walks.
//!
//! # Example
//!
//! ```
//! use minoan_rdf::dataset::DatasetBuilder;
//!
//! let mut b = DatasetBuilder::new();
//! let kb = b.add_kb("dbpedia", "http://dbpedia.org/resource/");
//! b.add_literal(kb, "http://dbpedia.org/resource/Heraklion", "rdfs:label", "Heraklion city");
//! b.add_resource(kb, "http://dbpedia.org/resource/Heraklion", "dbo:region",
//!                "http://dbpedia.org/resource/Crete");
//! b.add_literal(kb, "http://dbpedia.org/resource/Crete", "rdfs:label", "Crete island");
//! let ds = b.build();
//! assert_eq!(ds.len(), 2);
//! let heraklion = ds.entity_by_uri("http://dbpedia.org/resource/Heraklion").unwrap();
//! assert_eq!(ds.neighbors(heraklion).len(), 1);
//! ```

#![forbid(unsafe_code)]

pub mod dataset;
pub mod ntriples;
pub mod term;
pub mod tokenize;
pub mod turtle;

pub use dataset::{Dataset, DatasetBuilder, Description, EntityId, KbId, KbInfo, Value};
pub use term::{Literal, Term, Triple};
pub use turtle::{parse_turtle, TurtleError};
