//! Entity-centric view over RDF knowledge bases.
//!
//! ER algorithms do not work on triples but on *entity descriptions*: the
//! set of attribute–value pairs sharing a subject URI (paper §1). A
//! [`Dataset`] holds the descriptions of one or more KBs plus the
//! *neighbour graph* — which descriptions link to which via resource-valued
//! attributes — that the progressive update phase exploits as similarity
//! evidence.

use crate::ntriples;
use crate::term::{Term, Triple};
use crate::tokenize;
use minoan_common::{FxHashMap, FxHashSet, Interner, Symbol};
use std::fmt;

/// Dense id of a description within a [`Dataset`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntityId(pub u32);

impl EntityId {
    /// Raw index usable against dataset-sized vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Id of a knowledge base within a [`Dataset`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct KbId(pub u16);

impl KbId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An attribute value: either a literal string or a reference to another
/// resource by URI.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// Literal lexical form (language tags / datatypes are dropped — the
    /// schema-agnostic algorithms only use the lexical form).
    Literal(Box<str>),
    /// URI of the referenced resource.
    Resource(Box<str>),
}

impl Value {
    /// The literal form, if any.
    pub fn as_literal(&self) -> Option<&str> {
        match self {
            Value::Literal(s) => Some(s),
            Value::Resource(_) => None,
        }
    }

    /// The resource URI, if any.
    pub fn as_resource(&self) -> Option<&str> {
        match self {
            Value::Resource(s) => Some(s),
            Value::Literal(_) => None,
        }
    }
}

/// One entity description: all attribute–value pairs of a subject URI.
#[derive(Clone, Debug)]
pub struct Description {
    /// Subject URI.
    pub uri: Box<str>,
    /// Owning knowledge base.
    pub kb: KbId,
    /// Attribute–value pairs; attribute names are interned in the dataset's
    /// predicate interner.
    pub attributes: Vec<(Symbol, Value)>,
}

impl Description {
    /// Iterates literal values only.
    pub fn literals(&self) -> impl Iterator<Item = &str> {
        self.attributes.iter().filter_map(|(_, v)| v.as_literal())
    }

    /// Iterates resource-valued attributes only.
    pub fn resources(&self) -> impl Iterator<Item = &str> {
        self.attributes.iter().filter_map(|(_, v)| v.as_resource())
    }
}

/// Metadata of one knowledge base.
#[derive(Clone, Debug)]
pub struct KbInfo {
    /// Human-readable name (e.g. "dbpedia").
    pub name: Box<str>,
    /// URI namespace prefix of its entities.
    pub namespace: Box<str>,
    /// Number of descriptions contributed.
    pub entity_count: u32,
}

/// A set of knowledge bases viewed as entity descriptions + neighbour graph.
///
/// Construction goes through [`DatasetBuilder`]; a built dataset is
/// immutable, which lets every downstream algorithm borrow it freely.
pub struct Dataset {
    predicates: Interner,
    descriptions: Vec<Description>,
    kbs: Vec<KbInfo>,
    uri_index: FxHashMap<Box<str>, EntityId>,
    /// Undirected, deduplicated adjacency: `neighbors[e]` are the entities
    /// that `e` links to or is linked from via resource-valued attributes.
    neighbors: Vec<Box<[EntityId]>>,
    per_kb: Vec<Vec<EntityId>>,
}

impl Dataset {
    /// Number of descriptions across all KBs.
    pub fn len(&self) -> usize {
        self.descriptions.len()
    }

    /// Whether the dataset holds no description.
    pub fn is_empty(&self) -> bool {
        self.descriptions.is_empty()
    }

    /// Number of knowledge bases.
    pub fn kb_count(&self) -> usize {
        self.kbs.len()
    }

    /// Metadata of KB `kb`.
    pub fn kb(&self, kb: KbId) -> &KbInfo {
        &self.kbs[kb.index()]
    }

    /// All KB metadata in id order.
    pub fn kbs(&self) -> &[KbInfo] {
        &self.kbs
    }

    /// Iterates all entity ids in increasing order.
    pub fn entities(&self) -> impl Iterator<Item = EntityId> + '_ {
        (0..self.descriptions.len() as u32).map(EntityId)
    }

    /// Entity ids belonging to `kb`, in increasing order.
    pub fn entities_of_kb(&self, kb: KbId) -> &[EntityId] {
        &self.per_kb[kb.index()]
    }

    /// The description of `e`.
    pub fn description(&self, e: EntityId) -> &Description {
        &self.descriptions[e.index()]
    }

    /// Owning KB of `e`.
    pub fn kb_of(&self, e: EntityId) -> KbId {
        self.descriptions[e.index()].kb
    }

    /// Subject URI of `e`.
    pub fn uri(&self, e: EntityId) -> &str {
        &self.descriptions[e.index()].uri
    }

    /// Looks an entity up by its subject URI.
    pub fn entity_by_uri(&self, uri: &str) -> Option<EntityId> {
        self.uri_index.get(uri).copied()
    }

    /// Neighbouring (linked) descriptions of `e`, sorted ascending.
    pub fn neighbors(&self, e: EntityId) -> &[EntityId] {
        &self.neighbors[e.index()]
    }

    /// The predicate interner (attribute-name symbols ↔ strings).
    pub fn predicates(&self) -> &Interner {
        &self.predicates
    }

    /// Resolves a predicate symbol to its IRI/name.
    pub fn predicate_name(&self, p: Symbol) -> &str {
        self.predicates.resolve(p)
    }

    /// All blocking tokens of `e`: tokens of every literal value plus the
    /// URI-infix tokens of every resource value and of the subject URI.
    pub fn blocking_tokens(&self, e: EntityId) -> Vec<String> {
        let d = self.description(e);
        let mut out = Vec::with_capacity(d.attributes.len() * 3);
        for (_, v) in &d.attributes {
            match v {
                Value::Literal(s) => out.extend(tokenize::value_tokens(s)),
                Value::Resource(u) => out.extend(tokenize::uri_infix_tokens(u)),
            }
        }
        out
    }

    /// Visits all blocking tokens of `e` — the same tokens, in the same
    /// order, as [`Self::blocking_tokens`] — without allocating a
    /// `String` per token. This is the hot path of the string-free block
    /// builders: each token is composed in `buffers` and borrowed by `f`
    /// for the duration of the call (typically to intern it).
    pub fn for_each_blocking_token(
        &self,
        e: EntityId,
        buffers: &mut tokenize::TokenBuffers,
        mut f: impl FnMut(&str),
    ) {
        let d = self.description(e);
        for (_, v) in &d.attributes {
            match v {
                Value::Literal(s) => tokenize::value_tokens_with(s, buffers, &mut f),
                Value::Resource(u) => tokenize::uri_infix_tokens_with(u, buffers, &mut f),
            }
        }
    }

    /// Tokens of literal values only (no URI evidence).
    pub fn literal_tokens(&self, e: EntityId) -> Vec<String> {
        let d = self.description(e);
        let mut out = Vec::new();
        for s in d.literals() {
            out.extend(tokenize::value_tokens(s));
        }
        out
    }

    /// Literal values of "name-like" attributes (`label`, `name`, `title`),
    /// used by string-similarity matchers.
    pub fn name_values(&self, e: EntityId) -> Vec<&str> {
        let d = self.description(e);
        d.attributes
            .iter()
            .filter(|(p, _)| {
                let name = self.predicates.resolve(*p).to_lowercase();
                name.contains("label") || name.contains("name") || name.contains("title")
            })
            .filter_map(|(_, v)| v.as_literal())
            .collect()
    }

    /// Number of distinct attribute names used across the dataset.
    pub fn vocabulary_size(&self) -> usize {
        self.predicates.len()
    }

    /// Mean number of attribute–value pairs per description.
    pub fn avg_attributes(&self) -> f64 {
        if self.descriptions.is_empty() {
            return 0.0;
        }
        self.descriptions
            .iter()
            .map(|d| d.attributes.len())
            .sum::<usize>() as f64
            / self.descriptions.len() as f64
    }

    /// Total number of neighbour links (each undirected link counted once).
    pub fn link_count(&self) -> usize {
        self.neighbors.iter().map(|n| n.len()).sum::<usize>() / 2
    }

    /// Serialises KB `kb` as an N-Triples document.
    pub fn to_ntriples(&self, kb: KbId) -> String {
        let mut triples = Vec::new();
        for &e in self.entities_of_kb(kb) {
            let d = self.description(e);
            for (p, v) in &d.attributes {
                let object = match v {
                    Value::Literal(s) => Term::literal(s.to_string()),
                    Value::Resource(u) => Term::iri(u.to_string()),
                };
                triples.push(Triple::new(
                    Term::iri(d.uri.to_string()),
                    self.predicates.resolve(*p),
                    object,
                ));
            }
        }
        ntriples::write_document(&triples)
    }
}

impl fmt::Debug for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Dataset")
            .field("kbs", &self.kbs.len())
            .field("entities", &self.descriptions.len())
            .field("vocabulary", &self.predicates.len())
            .finish()
    }
}

/// Incremental [`Dataset`] construction.
#[derive(Default)]
pub struct DatasetBuilder {
    predicates: Interner,
    descriptions: Vec<Description>,
    kbs: Vec<KbInfo>,
    uri_index: FxHashMap<Box<str>, EntityId>,
}

impl DatasetBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a knowledge base and returns its id.
    ///
    /// # Panics
    /// Panics after 65 536 KBs (the `u16` id space).
    pub fn add_kb(&mut self, name: &str, namespace: &str) -> KbId {
        let id = KbId(u16::try_from(self.kbs.len()).expect("too many KBs"));
        self.kbs.push(KbInfo {
            name: name.into(),
            namespace: namespace.into(),
            entity_count: 0,
        });
        id
    }

    fn entity_for(&mut self, kb: KbId, subject: &str) -> EntityId {
        if let Some(&e) = self.uri_index.get(subject) {
            return e;
        }
        let e = EntityId(u32::try_from(self.descriptions.len()).expect("too many entities"));
        self.descriptions.push(Description {
            uri: subject.into(),
            kb,
            attributes: Vec::new(),
        });
        self.kbs[kb.index()].entity_count += 1;
        self.uri_index.insert(subject.into(), e);
        e
    }

    /// Adds a literal-valued attribute to `subject` (creating its
    /// description on first mention).
    pub fn add_literal(&mut self, kb: KbId, subject: &str, predicate: &str, value: &str) {
        let p = self.predicates.intern(predicate);
        let e = self.entity_for(kb, subject);
        self.descriptions[e.index()]
            .attributes
            .push((p, Value::Literal(value.into())));
    }

    /// Adds a resource-valued attribute (a link) to `subject`.
    pub fn add_resource(&mut self, kb: KbId, subject: &str, predicate: &str, object_uri: &str) {
        let p = self.predicates.intern(predicate);
        let e = self.entity_for(kb, subject);
        self.descriptions[e.index()]
            .attributes
            .push((p, Value::Resource(object_uri.into())));
    }

    /// Adds a parsed triple. Blank-node subjects are namespaced per KB so
    /// labels never collide across KBs; literal objects become literal
    /// attributes, IRI/blank objects become resource attributes.
    pub fn add_triple(&mut self, kb: KbId, triple: &Triple) {
        let subject = match &triple.subject {
            Term::Iri(s) => s.clone(),
            Term::Blank(b) => format!("bnode://{}/{}", self.kbs[kb.index()].name, b),
            Term::Literal(_) => return, // invalid; parser already rejects it
        };
        match &triple.object {
            Term::Literal(l) => self.add_literal(kb, &subject, &triple.predicate, &l.value),
            Term::Iri(o) => self.add_resource(kb, &subject, &triple.predicate, o),
            Term::Blank(b) => {
                let o = format!("bnode://{}/{}", self.kbs[kb.index()].name, b);
                self.add_resource(kb, &subject, &triple.predicate, &o);
            }
        }
    }

    /// Parses an N-Triples document into a fresh KB.
    pub fn add_ntriples_kb(
        &mut self,
        name: &str,
        namespace: &str,
        document: &str,
    ) -> Result<KbId, ntriples::ParseError> {
        let kb = self.add_kb(name, namespace);
        for triple in ntriples::parse_document(document)? {
            self.add_triple(kb, &triple);
        }
        Ok(kb)
    }

    /// Finalises the dataset: resolves resource links into the undirected
    /// neighbour graph and freezes all indexes.
    pub fn build(self) -> Dataset {
        let n = self.descriptions.len();
        let mut adj: Vec<FxHashSet<EntityId>> = vec![FxHashSet::default(); n];
        for (i, d) in self.descriptions.iter().enumerate() {
            let src = EntityId(i as u32);
            for target in d.resources() {
                if let Some(&dst) = self.uri_index.get(target) {
                    if dst != src {
                        adj[src.index()].insert(dst);
                        adj[dst.index()].insert(src);
                    }
                }
            }
        }
        let neighbors: Vec<Box<[EntityId]>> = adj
            .into_iter()
            .map(|s| {
                let mut v: Vec<EntityId> = s.into_iter().collect();
                v.sort_unstable();
                v.into_boxed_slice()
            })
            .collect();
        let mut per_kb: Vec<Vec<EntityId>> = vec![Vec::new(); self.kbs.len()];
        for (i, d) in self.descriptions.iter().enumerate() {
            per_kb[d.kb.index()].push(EntityId(i as u32));
        }
        Dataset {
            predicates: self.predicates,
            descriptions: self.descriptions,
            kbs: self.kbs,
            uri_index: self.uri_index,
            neighbors,
            per_kb,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        let mut b = DatasetBuilder::new();
        let kb0 = b.add_kb("dbpedia", "http://db.org/r/");
        let kb1 = b.add_kb("yago", "http://yago.org/r/");
        b.add_literal(
            kb0,
            "http://db.org/r/Heraklion",
            "http://db.org/o/label",
            "Heraklion",
        );
        b.add_resource(
            kb0,
            "http://db.org/r/Heraklion",
            "http://db.org/o/region",
            "http://db.org/r/Crete",
        );
        b.add_literal(
            kb0,
            "http://db.org/r/Crete",
            "http://db.org/o/label",
            "Crete",
        );
        b.add_literal(
            kb1,
            "http://yago.org/r/Iraklio",
            "http://yago.org/o/name",
            "Iraklio city",
        );
        b.build()
    }

    #[test]
    fn builder_groups_by_subject() {
        let ds = small();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.kb_count(), 2);
        let h = ds.entity_by_uri("http://db.org/r/Heraklion").unwrap();
        assert_eq!(ds.description(h).attributes.len(), 2);
        assert_eq!(ds.kb_of(h), KbId(0));
        assert_eq!(ds.kb(KbId(0)).entity_count, 2);
        assert_eq!(ds.kb(KbId(1)).entity_count, 1);
    }

    #[test]
    fn neighbor_graph_is_undirected() {
        let ds = small();
        let h = ds.entity_by_uri("http://db.org/r/Heraklion").unwrap();
        let c = ds.entity_by_uri("http://db.org/r/Crete").unwrap();
        assert_eq!(ds.neighbors(h), &[c]);
        assert_eq!(ds.neighbors(c), &[h]);
        assert_eq!(ds.link_count(), 1);
    }

    #[test]
    fn dangling_resource_links_are_ignored() {
        let mut b = DatasetBuilder::new();
        let kb = b.add_kb("kb", "http://k/");
        b.add_resource(kb, "http://k/a", "http://k/p", "http://elsewhere/unknown");
        let ds = b.build();
        let a = ds.entity_by_uri("http://k/a").unwrap();
        assert!(ds.neighbors(a).is_empty());
    }

    #[test]
    fn self_links_are_dropped() {
        let mut b = DatasetBuilder::new();
        let kb = b.add_kb("kb", "http://k/");
        b.add_resource(kb, "http://k/a", "http://k/p", "http://k/a");
        let ds = b.build();
        let a = ds.entity_by_uri("http://k/a").unwrap();
        assert!(ds.neighbors(a).is_empty());
    }

    #[test]
    fn blocking_tokens_mix_literals_and_uris() {
        let ds = small();
        let h = ds.entity_by_uri("http://db.org/r/Heraklion").unwrap();
        let toks = ds.blocking_tokens(h);
        assert!(toks.contains(&"heraklion".to_string()));
        assert!(
            toks.contains(&"crete".to_string()),
            "resource infix token missing: {toks:?}"
        );
        let lit = ds.literal_tokens(h);
        assert!(!lit.contains(&"crete".to_string()));
    }

    #[test]
    fn name_values_pick_label_like_attributes() {
        let ds = small();
        let i = ds.entity_by_uri("http://yago.org/r/Iraklio").unwrap();
        assert_eq!(ds.name_values(i), vec!["Iraklio city"]);
    }

    #[test]
    fn per_kb_partition_is_complete() {
        let ds = small();
        let total: usize = (0..ds.kb_count())
            .map(|k| ds.entities_of_kb(KbId(k as u16)).len())
            .sum();
        assert_eq!(total, ds.len());
    }

    #[test]
    fn ntriples_round_trip_through_builder() {
        let ds = small();
        let doc = ds.to_ntriples(KbId(0));
        let mut b = DatasetBuilder::new();
        b.add_ntriples_kb("copy", "http://db.org/r/", &doc).unwrap();
        let copy = b.build();
        assert_eq!(copy.len(), 2);
        let h = copy.entity_by_uri("http://db.org/r/Heraklion").unwrap();
        assert_eq!(copy.description(h).attributes.len(), 2);
    }

    #[test]
    fn blank_nodes_are_namespaced_per_kb() {
        let mut b = DatasetBuilder::new();
        let kb0 = b.add_kb("a", "http://a/");
        let kb1 = b.add_kb("b", "http://b/");
        let t = crate::ntriples::parse_line("_:x <http://p> \"v\" .", 1).unwrap();
        b.add_triple(kb0, &t);
        b.add_triple(kb1, &t);
        let ds = b.build();
        assert_eq!(
            ds.len(),
            2,
            "same blank label in different KBs stays distinct"
        );
    }

    #[test]
    fn stats_helpers() {
        let ds = small();
        assert_eq!(ds.vocabulary_size(), 3);
        assert!((ds.avg_attributes() - 4.0 / 3.0).abs() < 1e-12);
    }
}
