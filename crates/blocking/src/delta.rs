//! Incremental maintenance of a token-blocking collection under batched
//! entity arrivals — the blocking half of the delta-sweep pipeline.
//!
//! The batch builders ([`crate::builders`]) tokenise a whole corpus and
//! counting-sort it into the flat CSR slabs in one shot. Under the
//! paper's pay-as-you-go arrival model that is the wrong shape: every
//! batch of new descriptions would re-tokenise and re-sort everything
//! already ingested. [`IncrementalCollection`] keeps the blocking state
//! *updatable* instead:
//!
//! * one persistent [`Interner`], so a token's [`Symbol`] is stable
//!   across every batch (batches are tokenised through the same
//!   string-free [`KeyAssignments`] path as the batch builders);
//! * per-symbol sorted member lists, grown by a backward sorted merge
//!   (`layout::merge_sorted_into`) — a delta-append, never a rebuild;
//! * per-symbol comparison counts and the presence mask (≥ 2 members
//!   inducing ≥ 1 comparison), recomputed **only for the symbols the
//!   batch touched**;
//! * the key-string block order, maintained by merging newly-present
//!   symbols into place (the id-remap: established blocks keep their
//!   relative order, so an untouched entity's ascending-block-id sweep
//!   order is stable).
//!
//! Each [`IncrementalCollection::ingest`] returns a [`DeltaOutcome`]: a
//! fresh [`BlockCollection`] snapshot of the merged corpus (logically
//! identical to `token_blocking` over the arrived entities — the
//! equivalence is property-tested) plus the *dirty sets* the
//! meta-blocking delta-sweep needs — which blocks changed, which
//! entities' block lists grew, and which entities' co-occurrence
//! neighbourhoods are stale. Arrivals only ever add members, so block
//! presence is monotone and the dirty sets stay small once the corpus
//! warms up.

use crate::collection::{count_comparisons, KbScratch, KeyAssignments};
use crate::layout::{merge_sorted_by_into, merge_sorted_into};
use crate::{BlockCollection, BlockId, ErMode};
use minoan_common::{Interner, Symbol};
use minoan_rdf::tokenize::TokenBuffers;
use minoan_rdf::{Dataset, EntityId};
use std::sync::Arc;

/// What one [`IncrementalCollection::ingest`] changed.
#[derive(Debug)]
pub struct DeltaOutcome {
    /// The merged-corpus block collection after this ingest — block ids
    /// are snapshot-local (key-string order over the present symbols).
    pub snapshot: BlockCollection,
    /// Blocks (snapshot ids, ascending) whose member list changed in
    /// this ingest, including the newly present ones.
    pub touched_blocks: Vec<BlockId>,
    /// Subset of [`Self::touched_blocks`]: blocks that crossed the
    /// presence threshold (≥ 2 members, ≥ 1 comparison) in this ingest.
    pub newly_present: Vec<BlockId>,
    /// Entities whose own block list changed: batch members that joined
    /// at least one present block, plus every member of a newly-present
    /// block. Sorted, deduplicated.
    pub grown: Vec<EntityId>,
    /// Members of the touched blocks — every entity whose co-occurrence
    /// statistics (CBS / ARCS contributions) may have changed. Sorted,
    /// deduplicated; always a superset of [`Self::grown`].
    pub dirty: Vec<EntityId>,
}

/// An updatable token-blocking index over a fixed entity universe.
///
/// Entities of `dataset` arrive in batches via [`Self::ingest`]; the
/// collection maintains exactly the blocks `builders::token_blocking`
/// would build over the arrived subset, without ever re-tokenising or
/// re-sorting what already arrived.
pub struct IncrementalCollection<'d> {
    dataset: &'d Dataset,
    mode: ErMode,
    /// Persistent token interner — symbols are stable across batches.
    keys: Interner,
    /// Per symbol: arrived member entities, sorted ascending.
    members: Vec<Vec<EntityId>>,
    /// Per symbol: comparisons under `mode`; recomputed only on touch.
    comparisons: Vec<u64>,
    /// Per symbol: whether the key currently forms a block. Monotone
    /// under arrivals (members are only ever added).
    present: Vec<bool>,
    /// Present symbols in key-string order — the snapshot block order.
    order: Vec<Symbol>,
    /// Per symbol: its slot in `order` (`u32::MAX` when not present).
    slot_of: Vec<u32>,
    /// Per entity: its sorted distinct key symbols (empty until arrival).
    keys_of: Vec<Vec<Symbol>>,
    arrived: Vec<bool>,
    num_arrived: usize,
    kb_of: Vec<u16>,
    num_kbs: usize,
}

impl<'d> IncrementalCollection<'d> {
    /// An empty collection over `dataset`'s entity universe; no entity
    /// has arrived yet.
    pub fn new(dataset: &'d Dataset, mode: ErMode) -> Self {
        let kb_of: Vec<u16> = (0..dataset.len() as u32)
            .map(|e| dataset.kb_of(EntityId(e)).0)
            .collect();
        let num_kbs = dataset.kbs().len();
        Self {
            dataset,
            mode,
            keys: Interner::new(),
            members: Vec::new(),
            comparisons: Vec::new(),
            present: Vec::new(),
            order: Vec::new(),
            slot_of: Vec::new(),
            keys_of: vec![Vec::new(); dataset.len()],
            arrived: vec![false; dataset.len()],
            num_arrived: 0,
            kb_of,
            num_kbs,
        }
    }

    /// Ingests a batch of newly-arrived entities: tokenises them through
    /// the string-free [`KeyAssignments`] path, delta-appends their
    /// assignments into the per-symbol slabs, recomputes comparisons and
    /// presence for the touched symbols only, and returns the new
    /// snapshot together with the dirty sets.
    ///
    /// # Panics
    /// Panics if an entity in `batch` already arrived.
    pub fn ingest(&mut self, batch: &[EntityId], threads: usize) -> DeltaOutcome {
        let (touched_syms, newly_present_syms, mut grown) = self.merge_batch(batch);
        self.install_order(&newly_present_syms);

        // Dirty sets in snapshot block ids / entity ids.
        let mut touched_blocks: Vec<BlockId> = touched_syms
            .iter()
            .map(|&s| BlockId(self.slot_of[s.index()]))
            .collect();
        touched_blocks.sort_unstable();
        let mut newly_present: Vec<BlockId> = newly_present_syms
            .iter()
            .map(|&s| BlockId(self.slot_of[s.index()]))
            .collect();
        newly_present.sort_unstable();
        let mut dirty: Vec<EntityId> = Vec::new();
        for &s in &touched_syms {
            dirty.extend_from_slice(&self.members[s.index()]);
        }
        dirty.sort_unstable();
        dirty.dedup();
        grown.sort_unstable();
        grown.dedup();

        DeltaOutcome {
            snapshot: self.snapshot(threads),
            touched_blocks,
            newly_present,
            grown,
            dirty,
        }
    }

    /// [`Self::ingest`] without the snapshot or the dirty-set mapping —
    /// for consumers that read the live slabs through
    /// [`Self::entity_keys`] / [`Self::key_members`] instead of sweeping
    /// a [`BlockCollection`]. One `absorb` per description keeps an
    /// arrival loop at delta cost: nothing is re-tokenised, re-sorted or
    /// re-materialised.
    ///
    /// # Panics
    /// Panics if an entity in `batch` already arrived.
    pub fn absorb(&mut self, batch: &[EntityId]) {
        let (_, newly_present_syms, _) = self.merge_batch(batch);
        self.install_order(&newly_present_syms);
    }

    /// Tokenises `batch` and merges its assignments into the per-symbol
    /// slabs; returns `(touched, newly_present, grown)` in symbol space
    /// (`newly_present` sorted by key string, `grown` unsorted with
    /// duplicates).
    fn merge_batch(&mut self, batch: &[EntityId]) -> (Vec<Symbol>, Vec<Symbol>, Vec<EntityId>) {
        // 1. Tokenise the batch through the persistent interner.
        let mut asg = KeyAssignments::with_keys(std::mem::take(&mut self.keys));
        let mut buffers = TokenBuffers::default();
        for &e in batch {
            assert!(
                !self.arrived[e.index()],
                "entity {e:?} ingested twice into the incremental collection"
            );
            self.arrived[e.index()] = true;
            self.dataset
                .for_each_blocking_token(e, &mut buffers, |tok| asg.push_key(tok));
            asg.seal_entity();
        }
        self.num_arrived += batch.len();
        let (keys, syms, ends) = asg.into_parts();
        self.keys = keys;
        let k = self.keys.len();
        self.members.resize_with(k, Vec::new);
        self.comparisons.resize(k, 0);
        self.present.resize(k, false);

        // 2. Group the batch assignments by symbol (a sort, not a hash
        //    map — deterministic and slab-friendly) and merge each run
        //    into its sorted member list.
        let mut additions: Vec<(Symbol, EntityId)> = Vec::with_capacity(syms.len());
        let mut start = 0usize;
        for (i, &end) in ends.iter().enumerate() {
            let run = &syms[start..end as usize];
            self.keys_of[batch[i].index()] = run.to_vec();
            for &s in run {
                additions.push((s, batch[i]));
            }
            start = end as usize;
        }
        additions.sort_unstable();

        let mut touched_syms: Vec<Symbol> = Vec::new();
        let mut newly_present_syms: Vec<Symbol> = Vec::new();
        let mut grown: Vec<EntityId> = Vec::new();
        let mut scratch = KbScratch::new(self.num_kbs);
        let mut run: Vec<EntityId> = Vec::new();
        let mut i = 0usize;
        while i < additions.len() {
            let sym = additions[i].0;
            run.clear();
            while i < additions.len() && additions[i].0 == sym {
                run.push(additions[i].1);
                i += 1;
            }
            run.sort_unstable();
            merge_sorted_into(&mut self.members[sym.index()], &run);
            let members = &self.members[sym.index()];
            let c = if members.len() >= 2 {
                count_comparisons(members, &self.kb_of, self.mode, &mut scratch)
            } else {
                0
            };
            self.comparisons[sym.index()] = c;
            if c > 0 {
                touched_syms.push(sym);
                // The batch members just merged into this present block
                // gained a block in their own block list.
                grown.extend(run.iter().copied());
                if !self.present[sym.index()] {
                    self.present[sym.index()] = true;
                    newly_present_syms.push(sym);
                    // A newly-present block grows *every* member's block
                    // list, including pre-batch members (deduplicated
                    // below).
                    grown.extend(members.iter().copied());
                }
            }
        }

        newly_present_syms
            .sort_unstable_by(|&a, &b| self.keys.resolve(a).cmp(self.keys.resolve(b)));
        (touched_syms, newly_present_syms, grown)
    }

    /// Merges newly-present symbols (pre-sorted by key string) into the
    /// block order (the id-remap) and refreshes the slot table.
    fn install_order(&mut self, newly_present_syms: &[Symbol]) {
        let k = self.keys.len();
        if !newly_present_syms.is_empty() {
            let keys = &self.keys;
            merge_sorted_by_into(&mut self.order, newly_present_syms, |&a, &b| {
                keys.resolve(a).cmp(keys.resolve(b))
            });
            self.slot_of.clear();
            self.slot_of.resize(k, u32::MAX);
            for (slot, &s) in self.order.iter().enumerate() {
                self.slot_of[s.index()] = slot as u32;
            }
        } else {
            self.slot_of.resize(k, u32::MAX);
        }
    }

    /// Builds the merged-corpus [`BlockCollection`] from the per-symbol
    /// slabs: the present symbols in key-string order, sharing the
    /// persistent interner. Logically identical to running
    /// `builders::token_blocking` over the arrived entities (key
    /// strings, members, comparisons — symbols may differ because the
    /// interners assign them in arrival order).
    pub fn snapshot(&self, threads: usize) -> BlockCollection {
        let mut block_keys = Vec::with_capacity(self.order.len());
        let mut block_offsets = Vec::with_capacity(self.order.len() + 1);
        block_offsets.push(0u32);
        let mut block_entities: Vec<EntityId> = Vec::new();
        let mut comparisons = Vec::with_capacity(self.order.len());
        for &s in &self.order {
            block_keys.push(s);
            block_entities.extend_from_slice(&self.members[s.index()]);
            block_offsets.push(
                u32::try_from(block_entities.len()).expect("block slab exceeds u32::MAX entries"),
            );
            comparisons.push(self.comparisons[s.index()]);
        }
        BlockCollection::finish(
            self.mode,
            Arc::new(self.keys.clone()),
            block_keys,
            block_offsets,
            block_entities,
            comparisons,
            self.kb_of.clone(),
            self.num_kbs,
            threads,
        )
    }

    /// ER mode the collection maintains its comparison counts under.
    pub fn mode(&self) -> ErMode {
        self.mode
    }

    /// The fixed entity universe the arrivals are drawn from.
    pub fn dataset(&self) -> &'d Dataset {
        self.dataset
    }

    /// Whether entity `e` has arrived.
    pub fn has_arrived(&self, e: EntityId) -> bool {
        self.arrived[e.index()]
    }

    /// Number of arrived entities.
    pub fn num_arrived(&self) -> usize {
        self.num_arrived
    }

    /// Number of currently-present blocks.
    pub fn num_blocks(&self) -> usize {
        self.order.len()
    }

    /// The distinct blocking-key symbols of an arrived entity, sorted by
    /// symbol id (empty until `e` arrives). Symbols are stable across
    /// batches, so this slice never changes after arrival.
    pub fn entity_keys(&self, e: EntityId) -> &[Symbol] {
        &self.keys_of[e.index()]
    }

    /// The arrived members of key `s`'s block, sorted ascending — empty
    /// unless the key currently forms a block (≥ 1 comparison under the
    /// ER mode), exactly the blocks a snapshot would contain.
    pub fn key_members(&self, s: Symbol) -> &[EntityId] {
        if self.present.get(s.index()).copied().unwrap_or(false) {
            &self.members[s.index()]
        } else {
            &[]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::token_blocking;
    use minoan_datagen::{generate, profiles};

    /// `token_blocking` restricted to the arrived subset: same dataset
    /// (same entity ids and KB partition), empty key runs for entities
    /// that have not arrived.
    fn reference(dataset: &Dataset, mode: ErMode, arrived: &[bool]) -> BlockCollection {
        let mut asg = KeyAssignments::with_capacity(dataset.len());
        let mut buffers = TokenBuffers::default();
        for e in dataset.entities() {
            if arrived[e.index()] {
                dataset.for_each_blocking_token(e, &mut buffers, |tok| asg.push_key(tok));
            }
            asg.seal_entity();
        }
        BlockCollection::from_assignments(dataset, mode, asg)
    }

    fn assert_same(a: &BlockCollection, b: &BlockCollection, label: &str) {
        assert_eq!(a.len(), b.len(), "{label}: block count");
        for (x, y) in a.blocks().zip(b.blocks()) {
            assert_eq!(a.key_str(x.id), b.key_str(y.id), "{label}: key order");
            assert_eq!(x.entities, y.entities, "{label}: members");
            assert_eq!(x.comparisons, y.comparisons, "{label}: comparisons");
            assert_eq!(
                a.inv_cardinality(x.id).to_bits(),
                b.inv_cardinality(y.id).to_bits(),
                "{label}: inv_cardinality bits"
            );
        }
        for e in 0..a.num_entities() as u32 {
            assert_eq!(
                a.entity_blocks(EntityId(e)),
                b.entity_blocks(EntityId(e)),
                "{label}: entity {e} blocks"
            );
        }
        assert_eq!(a.total_comparisons(), b.total_comparisons(), "{label}");
    }

    #[test]
    fn ingest_matches_from_scratch_rebuild_per_batch() {
        let g = generate(&profiles::center_dense(120, 13));
        let ds = &g.dataset;
        for mode in [ErMode::CleanClean, ErMode::Dirty] {
            let mut inc = IncrementalCollection::new(ds, mode);
            let mut arrived = vec![false; ds.len()];
            let all: Vec<EntityId> = ds.entities().collect();
            for (i, batch) in all.chunks(17).enumerate() {
                let delta = inc.ingest(batch, 2);
                for &e in batch {
                    arrived[e.index()] = true;
                }
                let expect = reference(ds, mode, &arrived);
                assert_same(&delta.snapshot, &expect, &format!("{mode:?}/batch {i}"));
            }
            assert_eq!(inc.num_arrived(), ds.len());
        }
    }

    #[test]
    fn dirty_sets_are_consistent() {
        let g = generate(&profiles::center_dense(100, 29));
        let ds = &g.dataset;
        let mut inc = IncrementalCollection::new(ds, ErMode::CleanClean);
        let all: Vec<EntityId> = ds.entities().collect();
        let mut prev_blocks = 0usize;
        for batch in all.chunks(11) {
            let delta = inc.ingest(batch, 1);
            let snap = &delta.snapshot;
            // Presence is monotone under arrivals.
            assert!(snap.len() >= prev_blocks);
            prev_blocks = snap.len();
            // grown ⊆ dirty, batch ⊆ grown.
            let dirty: std::collections::BTreeSet<_> = delta.dirty.iter().copied().collect();
            for &e in &delta.grown {
                assert!(dirty.contains(&e), "grown must be dirty");
            }
            let grown: std::collections::BTreeSet<_> = delta.grown.iter().copied().collect();
            for &e in batch {
                if !snap.entity_blocks(e).is_empty() {
                    assert!(grown.contains(&e), "blocked batch entity must be grown");
                }
            }
            // Every block containing a batch entity is touched.
            let touched: std::collections::BTreeSet<_> =
                delta.touched_blocks.iter().copied().collect();
            for &e in batch {
                for &b in snap.entity_blocks(e) {
                    assert!(touched.contains(&b), "block of a batch entity not touched");
                }
            }
            // dirty = exactly the members of the touched blocks.
            let mut expect: Vec<EntityId> = delta
                .touched_blocks
                .iter()
                .flat_map(|&b| snap.block_entities(b).iter().copied())
                .collect();
            expect.sort_unstable();
            expect.dedup();
            assert_eq!(delta.dirty, expect);
            // newly_present ⊆ touched.
            for &b in &delta.newly_present {
                assert!(touched.contains(&b));
            }
        }
    }

    #[test]
    fn untouched_blocks_keep_members_across_ingests() {
        let g = generate(&profiles::center_dense(90, 3));
        let ds = &g.dataset;
        let mut inc = IncrementalCollection::new(ds, ErMode::CleanClean);
        let all: Vec<EntityId> = ds.entities().collect();
        let (first, second) = all.split_at(all.len() / 2);
        let d1 = inc.ingest(first, 1);
        let d2 = inc.ingest(second, 1);
        let touched: std::collections::BTreeSet<&str> = d2
            .touched_blocks
            .iter()
            .map(|&b| d2.snapshot.key_str(b))
            .collect();
        // A block untouched by the second ingest has identical members
        // before and after (looked up by key string — ids remap).
        for b1 in d1.snapshot.blocks() {
            let key = d1.snapshot.key_str(b1.id);
            if touched.contains(key) {
                continue;
            }
            let b2 = d2
                .snapshot
                .blocks()
                .find(|b| d2.snapshot.key_str(b.id) == key)
                .expect("presence is monotone");
            assert_eq!(b1.entities, b2.entities, "key {key}");
            assert_eq!(b1.comparisons, b2.comparisons, "key {key}");
        }
    }

    #[test]
    #[should_panic(expected = "ingested twice")]
    fn double_ingest_panics() {
        let g = generate(&profiles::center_dense(20, 1));
        let mut inc = IncrementalCollection::new(&g.dataset, ErMode::CleanClean);
        inc.ingest(&[EntityId(0)], 1);
        inc.ingest(&[EntityId(0)], 1);
    }

    #[test]
    fn empty_collection_snapshots_empty() {
        let g = generate(&profiles::center_dense(30, 2));
        let inc = IncrementalCollection::new(&g.dataset, ErMode::CleanClean);
        let snap = inc.snapshot(1);
        assert!(snap.is_empty());
        assert_eq!(snap.num_entities(), g.dataset.len());
    }

    #[test]
    fn absorb_and_accessors_agree_with_ingest_snapshots() {
        let g = generate(&profiles::center_dense(70, 19));
        let ds = &g.dataset;
        let mut lazy = IncrementalCollection::new(ds, ErMode::CleanClean);
        let mut eager = IncrementalCollection::new(ds, ErMode::CleanClean);
        let all: Vec<EntityId> = ds.entities().collect();
        for batch in all.chunks(13) {
            lazy.absorb(batch);
            let delta = eager.ingest(batch, 1);
            let snap = &delta.snapshot;
            assert_eq!(lazy.num_blocks(), snap.len());
            for e in ds.entities() {
                // Per-entity keys resolve to exactly the entity's
                // present snapshot blocks plus its presence-pending keys.
                let present: Vec<&[EntityId]> = lazy
                    .entity_keys(e)
                    .iter()
                    .map(|&s| lazy.key_members(s))
                    .filter(|m| !m.is_empty())
                    .collect();
                let expect: Vec<&[EntityId]> = snap
                    .entity_blocks(e)
                    .iter()
                    .map(|&b| snap.block_entities(b))
                    .collect();
                let mut present = present;
                present.sort_unstable();
                let mut expect = expect;
                expect.sort_unstable();
                assert_eq!(present, expect, "entity {e:?} block membership");
            }
        }
        // A later snapshot from the absorb-only collection still works.
        let snap = lazy.snapshot(2);
        let expect = token_blocking(ds, ErMode::CleanClean);
        assert_same(&snap, &expect, "absorb-only final snapshot");
    }

    #[test]
    fn full_single_batch_matches_token_blocking() {
        let g = generate(&profiles::center_dense(80, 7));
        let ds = &g.dataset;
        let mut inc = IncrementalCollection::new(ds, ErMode::CleanClean);
        let all: Vec<EntityId> = ds.entities().collect();
        let delta = inc.ingest(&all, 4);
        let expect = token_blocking(ds, ErMode::CleanClean);
        assert_same(&delta.snapshot, &expect, "single batch");
    }
}
