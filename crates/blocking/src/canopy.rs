//! Canopy-clustering blocking.
//!
//! McCallum, Nigam & Ungar's canopy method: pick a seed description, gather
//! every description within a *loose* cheap-similarity threshold `t1` into
//! its canopy, and remove from the seed pool those within the *tight*
//! threshold `t2 ≥ t1` (they are represented well enough by this canopy).
//! Canopies overlap, so borderline descriptions get multiple chances — a
//! good fit for the heterogeneous Web-of-Data descriptions the paper
//! targets.
//!
//! The cheap similarity is token-set Jaccard, computed only against
//! descriptions sharing at least one token with the seed (via an inverted
//! index), so the pass stays near-linear on sparse data rather than O(n²).

use crate::collection::{BlockCollection, ErMode};
use minoan_common::FxHashMap;
use minoan_rdf::{Dataset, EntityId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Configuration of the canopy blocker.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CanopyConfig {
    /// Loose threshold: Jaccard ≥ `t1` joins the canopy.
    pub t1: f64,
    /// Tight threshold: Jaccard ≥ `t2` also removes the description from
    /// the seed pool. Must satisfy `t2 ≥ t1`.
    pub t2: f64,
    /// Seed-order shuffle seed (canopy output depends on seed order).
    pub seed: u64,
}

impl Default for CanopyConfig {
    fn default() -> Self {
        Self {
            t1: 0.15,
            t2: 0.5,
            seed: 0xca40,
        }
    }
}

/// Runs canopy clustering over the blocking-token sets; each canopy with at
/// least two members becomes a block keyed `canopy:{seed-entity}`.
///
/// # Panics
/// Panics unless `0 < t1 ≤ t2 ≤ 1`.
pub fn canopy_blocking(dataset: &Dataset, mode: ErMode, config: CanopyConfig) -> BlockCollection {
    assert!(
        config.t1 > 0.0 && config.t1 <= config.t2 && config.t2 <= 1.0,
        "need 0 < t1 ≤ t2 ≤ 1"
    );
    let n = dataset.len();
    // Token sets + inverted index (token → entities), tokens as dense ids.
    let mut token_ids: FxHashMap<String, u32> = FxHashMap::default();
    let mut sets: Vec<Vec<u32>> = Vec::with_capacity(n);
    for e in dataset.entities() {
        let mut tokens = dataset.blocking_tokens(e);
        tokens.sort_unstable();
        tokens.dedup();
        let mut ids: Vec<u32> = tokens
            .into_iter()
            .map(|t| {
                let next = token_ids.len() as u32;
                *token_ids.entry(t).or_insert(next)
            })
            .collect();
        ids.sort_unstable();
        sets.push(ids);
    }
    let mut inverted: Vec<Vec<EntityId>> = vec![Vec::new(); token_ids.len()];
    for (i, set) in sets.iter().enumerate() {
        for &t in set {
            inverted[t as usize].push(EntityId(i as u32));
        }
    }

    let mut order: Vec<EntityId> = dataset.entities().collect();
    let mut rng = StdRng::seed_from_u64(config.seed);
    order.shuffle(&mut rng);

    let mut available: Vec<bool> = vec![true; n];
    let mut groups: Vec<(String, Vec<EntityId>)> = Vec::new();
    for &seed_entity in &order {
        if !available[seed_entity.index()] {
            continue;
        }
        available[seed_entity.index()] = false;
        let seed_set = &sets[seed_entity.index()];
        if seed_set.is_empty() {
            continue;
        }
        // Candidates: entities sharing ≥ 1 token, with overlap counts.
        let mut overlap: FxHashMap<EntityId, u32> = FxHashMap::default();
        for &t in seed_set {
            for &other in &inverted[t as usize] {
                if other != seed_entity {
                    *overlap.entry(other).or_insert(0) += 1;
                }
            }
        }
        let mut canopy: Vec<EntityId> = vec![seed_entity];
        let mut members: Vec<(EntityId, f64)> = overlap
            .into_iter()
            .map(|(other, common)| {
                let union = seed_set.len() + sets[other.index()].len() - common as usize;
                (other, common as f64 / union as f64)
            })
            .filter(|&(_, j)| j >= config.t1)
            .collect();
        members.sort_unstable_by_key(|a| a.0);
        for &(other, j) in &members {
            canopy.push(other);
            if j >= config.t2 {
                available[other.index()] = false;
            }
        }
        if canopy.len() >= 2 {
            groups.push((format!("canopy:{:08}", seed_entity.0), canopy));
        }
    }
    BlockCollection::from_groups(dataset, mode, groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minoan_rdf::DatasetBuilder;

    fn dataset() -> Dataset {
        let mut b = DatasetBuilder::new();
        let k0 = b.add_kb("a", "http://a/");
        let k1 = b.add_kb("b", "http://b/");
        b.add_literal(k0, "http://a/0", "http://p/d", "red wine from crete greece");
        b.add_literal(k1, "http://b/1", "http://p/d", "red wine from crete hellas");
        b.add_literal(
            k0,
            "http://a/2",
            "http://p/d",
            "blue bicycle with seven gears",
        );
        b.add_literal(
            k1,
            "http://b/3",
            "http://p/d",
            "bicycle blue having seven gears",
        );
        b.add_literal(
            k0,
            "http://a/4",
            "http://p/d",
            "totally unrelated text snippet",
        );
        b.build()
    }

    #[test]
    fn similar_pairs_share_a_canopy() {
        let ds = dataset();
        let blocks = canopy_blocking(&ds, ErMode::CleanClean, CanopyConfig::default());
        let pairs = blocks.distinct_pairs();
        assert!(
            pairs.contains(&(EntityId(0), EntityId(1))),
            "wine pair: {pairs:?}"
        );
        assert!(
            pairs.contains(&(EntityId(2), EntityId(3))),
            "bicycle pair: {pairs:?}"
        );
    }

    #[test]
    fn dissimilar_pairs_are_separated() {
        let ds = dataset();
        let blocks = canopy_blocking(&ds, ErMode::CleanClean, CanopyConfig::default());
        let pairs = blocks.distinct_pairs();
        assert!(
            !pairs.contains(&(EntityId(0), EntityId(3))),
            "wine vs bicycle: {pairs:?}"
        );
    }

    #[test]
    fn tight_threshold_shrinks_seed_pool() {
        let ds = dataset();
        // With t2 = t1 every canopy member is removed from the pool → few,
        // disjoint-seeded canopies.
        let tight = canopy_blocking(
            &ds,
            ErMode::Dirty,
            CanopyConfig {
                t1: 0.2,
                t2: 0.2,
                seed: 7,
            },
        );
        // With t2 = 1.0 nothing is removed → every entity seeds a canopy.
        let loose = canopy_blocking(
            &ds,
            ErMode::Dirty,
            CanopyConfig {
                t1: 0.2,
                t2: 1.0,
                seed: 7,
            },
        );
        assert!(tight.len() <= loose.len());
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = dataset();
        let a = canopy_blocking(&ds, ErMode::CleanClean, CanopyConfig::default());
        let b = canopy_blocking(&ds, ErMode::CleanClean, CanopyConfig::default());
        assert_eq!(a.distinct_pairs(), b.distinct_pairs());
    }

    #[test]
    #[should_panic(expected = "t1")]
    fn inverted_thresholds_rejected() {
        canopy_blocking(
            &dataset(),
            ErMode::Dirty,
            CanopyConfig {
                t1: 0.9,
                t2: 0.2,
                seed: 0,
            },
        );
    }

    #[test]
    fn empty_dataset() {
        let ds = DatasetBuilder::new().build();
        assert!(canopy_blocking(&ds, ErMode::Dirty, CanopyConfig::default()).is_empty());
    }
}
