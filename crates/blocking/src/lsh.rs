//! MinHash-LSH blocking.
//!
//! Locality-sensitive hashing over MinHash signatures: each description's
//! token set is summarised by a `bands × rows` signature; descriptions
//! whose signature agrees on *all rows of at least one band* land in a
//! common block. The probability of co-occurring is `1 − (1 − s^r)^b` for
//! Jaccard similarity `s` — an S-curve whose threshold `(1/b)^(1/r)` the
//! configuration controls, giving a principled way to target the "somehow
//! similar" regime (low token overlap) that exact token blocking misses.

use crate::collection::{BlockCollection, ErMode};
use minoan_common::hash::fx_hash_bytes;
use minoan_common::{FxHashMap, FxHashSet};
use minoan_rdf::{Dataset, EntityId};
use minoan_similarity::MinHasher;

/// Configuration of the LSH blocker.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LshConfig {
    /// Number of bands `b`.
    pub bands: usize,
    /// Rows per band `r` (signature length is `b·r`).
    pub rows: usize,
    /// Seed of the MinHash permutation family.
    pub seed: u64,
}

impl Default for LshConfig {
    fn default() -> Self {
        Self {
            bands: 8,
            rows: 4,
            seed: 0x15a4,
        }
    }
}

impl LshConfig {
    /// The approximate Jaccard threshold of the S-curve, `(1/b)^(1/r)`.
    pub fn threshold(&self) -> f64 {
        (1.0 / self.bands as f64).powf(1.0 / self.rows as f64)
    }
}

/// Hashes each entity's blocking-token set into LSH band buckets; each
/// non-trivial bucket becomes a block keyed `lsh:{band}:{bucket-hash}`.
///
/// # Panics
/// Panics if `bands == 0` or `rows == 0`.
pub fn minhash_lsh_blocking(dataset: &Dataset, mode: ErMode, config: LshConfig) -> BlockCollection {
    assert!(config.bands > 0, "bands must be positive");
    assert!(config.rows > 0, "rows must be positive");
    let hasher = MinHasher::new(config.bands * config.rows, config.seed);
    let mut groups: FxHashMap<String, Vec<EntityId>> = FxHashMap::default();
    for e in dataset.entities() {
        let tokens = token_ids(dataset, e);
        if tokens.is_empty() {
            continue;
        }
        let sig = hasher.signature(&tokens);
        for band in 0..config.bands {
            let slice = &sig.0[band * config.rows..(band + 1) * config.rows];
            let mut bytes = Vec::with_capacity(config.rows * 8);
            for v in slice {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
            let bucket = fx_hash_bytes(&bytes);
            groups
                .entry(format!("lsh:{band}:{bucket:016x}"))
                .or_default()
                .push(e);
        }
    }
    BlockCollection::from_groups(dataset, mode, groups)
}

/// Deterministic 32-bit ids of an entity's distinct blocking tokens.
fn token_ids(dataset: &Dataset, e: EntityId) -> Vec<u32> {
    let mut tokens = dataset.blocking_tokens(e);
    tokens.sort_unstable();
    tokens.dedup();
    let mut seen: FxHashSet<u32> = FxHashSet::default();
    tokens
        .iter()
        .map(|t| (fx_hash_bytes(t.as_bytes()) & 0xffff_ffff) as u32)
        .filter(|id| seen.insert(*id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use minoan_rdf::DatasetBuilder;

    /// Two near-duplicate descriptions (high Jaccard) + two unrelated ones.
    fn dataset() -> Dataset {
        let mut b = DatasetBuilder::new();
        let k0 = b.add_kb("a", "http://a/");
        let k1 = b.add_kb("b", "http://b/");
        b.add_literal(
            k0,
            "http://a/0",
            "http://p/d",
            "alpha beta gamma delta epsilon zeta",
        );
        b.add_literal(
            k1,
            "http://b/1",
            "http://p/d",
            "alpha beta gamma delta epsilon eta",
        );
        b.add_literal(
            k0,
            "http://a/2",
            "http://p/d",
            "one two three four five six",
        );
        b.add_literal(
            k1,
            "http://b/3",
            "http://p/d",
            "seven eight nine ten eleven twelve",
        );
        b.build()
    }

    #[test]
    fn high_jaccard_pair_is_blocked_together() {
        let ds = dataset();
        let blocks = minhash_lsh_blocking(&ds, ErMode::CleanClean, LshConfig::default());
        let pairs = blocks.distinct_pairs();
        assert!(
            pairs.contains(&(EntityId(0), EntityId(1))),
            "near-duplicates must share a band bucket: {pairs:?}"
        );
    }

    #[test]
    fn disjoint_sets_rarely_collide() {
        let ds = dataset();
        let blocks = minhash_lsh_blocking(&ds, ErMode::CleanClean, LshConfig::default());
        let pairs = blocks.distinct_pairs();
        assert!(
            !pairs.contains(&(EntityId(2), EntityId(3))),
            "token-disjoint descriptions should not co-occur: {pairs:?}"
        );
    }

    #[test]
    fn threshold_formula() {
        let c = LshConfig {
            bands: 16,
            rows: 4,
            seed: 0,
        };
        assert!((c.threshold() - (1.0f64 / 16.0).powf(0.25)).abs() < 1e-12);
        // More bands → lower threshold (more permissive).
        let permissive = LshConfig {
            bands: 32,
            rows: 4,
            seed: 0,
        };
        assert!(permissive.threshold() < c.threshold());
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = dataset();
        let a = minhash_lsh_blocking(&ds, ErMode::CleanClean, LshConfig::default());
        let b = minhash_lsh_blocking(&ds, ErMode::CleanClean, LshConfig::default());
        assert_eq!(a.distinct_pairs(), b.distinct_pairs());
    }

    #[test]
    fn different_seed_changes_buckets_not_semantics() {
        let ds = dataset();
        let c1 = LshConfig {
            seed: 1,
            ..LshConfig::default()
        };
        let blocks = minhash_lsh_blocking(&ds, ErMode::CleanClean, c1);
        // The high-similarity pair should survive any seed with b=8, r=4
        // (collision probability ≈ 1 − (1 − s⁴)⁸ ≈ 0.97 for s ≈ 0.71).
        assert!(blocks
            .distinct_pairs()
            .contains(&(EntityId(0), EntityId(1))));
    }

    #[test]
    fn empty_dataset() {
        let ds = DatasetBuilder::new().build();
        assert!(minhash_lsh_blocking(&ds, ErMode::Dirty, LshConfig::default()).is_empty());
    }

    #[test]
    #[should_panic(expected = "bands")]
    fn zero_bands_rejected() {
        minhash_lsh_blocking(
            &dataset(),
            ErMode::Dirty,
            LshConfig {
                bands: 0,
                rows: 4,
                seed: 0,
            },
        );
    }
}
