//! Composite blocking workflows.
//!
//! Real ER deployments rarely run a single blocker: evidence from several
//! key spaces is combined (union) or used to confirm each other
//! (intersection), then purged and filtered. This module provides the
//! combinators plus a declarative [`BlockingWorkflow`] builder used by the
//! CLI and the experiment harness.

use crate::builders;
use crate::canopy::{canopy_blocking, CanopyConfig};
use crate::collection::{BlockCollection, ErMode};
use crate::filter;
use crate::lsh::{minhash_lsh_blocking, LshConfig};
use crate::purge;
use crate::qgrams;
use crate::sorted_neighborhood;
use minoan_common::FxHashSet;
use minoan_rdf::{Dataset, EntityId};

/// Union of several block collections: all blocks of all inputs, with key
/// spaces kept disjoint by an input-index prefix. The result's comparison
/// stream is the concatenation — meta-blocking downstream handles the
/// added redundancy (and benefits from it: co-occurrence across *methods*
/// is extra match evidence).
pub fn union(dataset: &Dataset, mode: ErMode, inputs: &[&BlockCollection]) -> BlockCollection {
    let mut groups: Vec<(String, Vec<EntityId>)> = Vec::new();
    for (i, c) in inputs.iter().enumerate() {
        for b in c.blocks() {
            let key = format!("u{}:{}", i, c.key_str(b.id));
            groups.push((key, b.entities.to_vec()));
        }
    }
    BlockCollection::from_groups(dataset, mode, groups)
}

/// Distinct pairs proposed by **every** input — high-precision candidate
/// confirmation (a pair survives only if all methods agree).
pub fn pair_intersection(inputs: &[&BlockCollection]) -> Vec<(EntityId, EntityId)> {
    let Some((first, rest)) = inputs.split_first() else {
        return Vec::new();
    };
    let mut current: FxHashSet<(EntityId, EntityId)> = first.distinct_pairs().into_iter().collect();
    for c in rest {
        let next: FxHashSet<(EntityId, EntityId)> = c.distinct_pairs().into_iter().collect();
        current.retain(|p| next.contains(p));
    }
    let mut v: Vec<_> = current.into_iter().collect();
    v.sort_unstable();
    v
}

/// The blocking method a workflow step runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Method {
    /// Token blocking over values + resource URIs.
    Token,
    /// Prefix-Infix(-Suffix) URI blocking.
    UriInfix,
    /// Token ∪ URI blocking (the paper's default criterion).
    TokenAndUri,
    /// Attribute-clustering blocking with the given link threshold.
    AttributeClustering(f64),
    /// Character q-grams of the tokens.
    QGrams(usize),
    /// Extended q-grams: `(q, threshold)`.
    ExtendedQGrams(usize, f64),
    /// Fixed-window sorted neighborhood.
    SortedNeighborhood(usize),
    /// Adaptive sorted neighborhood: `(prefix_len, max_block)`.
    AdaptiveSortedNeighborhood(usize, usize),
    /// MinHash-LSH banding.
    MinHashLsh(LshConfig),
    /// Canopy clustering.
    Canopy(CanopyConfig),
}

impl Method {
    /// Runs the method.
    pub fn run(&self, dataset: &Dataset, mode: ErMode) -> BlockCollection {
        match *self {
            Method::Token => builders::token_blocking(dataset, mode),
            Method::UriInfix => builders::uri_infix_blocking(dataset, mode),
            Method::TokenAndUri => builders::token_and_uri_blocking(dataset, mode),
            Method::AttributeClustering(t) => {
                builders::attribute_clustering_blocking(dataset, mode, t)
            }
            Method::QGrams(q) => qgrams::qgram_blocking(dataset, mode, q),
            Method::ExtendedQGrams(q, t) => qgrams::extended_qgram_blocking(dataset, mode, q, t),
            Method::SortedNeighborhood(w) => {
                sorted_neighborhood::sorted_neighborhood(dataset, mode, w)
            }
            Method::AdaptiveSortedNeighborhood(p, m) => {
                sorted_neighborhood::adaptive_sorted_neighborhood(dataset, mode, p, m)
            }
            Method::MinHashLsh(c) => minhash_lsh_blocking(dataset, mode, c),
            Method::Canopy(c) => canopy_blocking(dataset, mode, c),
        }
    }

    /// Stable name used in reports and the CLI.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Token => "token",
            Method::UriInfix => "uri-infix",
            Method::TokenAndUri => "token+uri",
            Method::AttributeClustering(_) => "attribute-clustering",
            Method::QGrams(_) => "qgrams",
            Method::ExtendedQGrams(..) => "extended-qgrams",
            Method::SortedNeighborhood(_) => "sorted-neighborhood",
            Method::AdaptiveSortedNeighborhood(..) => "adaptive-sorted-neighborhood",
            Method::MinHashLsh(_) => "minhash-lsh",
            Method::Canopy(_) => "canopy",
        }
    }
}

/// Per-stage measurements of a workflow run.
#[derive(Clone, Debug, Default)]
pub struct WorkflowReport {
    /// `(stage name, blocks, comparisons)` after each stage.
    pub stages: Vec<(String, usize, u64)>,
}

impl WorkflowReport {
    fn record(&mut self, stage: impl Into<String>, c: &BlockCollection) {
        self.stages
            .push((stage.into(), c.len(), c.total_comparisons()));
    }

    /// Comparisons after the final stage.
    pub fn final_comparisons(&self) -> u64 {
        self.stages.last().map_or(0, |s| s.2)
    }
}

/// Declarative blocking workflow: one or more methods (unioned), optional
/// purging, optional filtering.
#[derive(Clone, Debug)]
pub struct BlockingWorkflow {
    methods: Vec<Method>,
    purge: bool,
    filter_ratio: Option<f64>,
}

impl BlockingWorkflow {
    /// Starts a workflow with one method.
    pub fn new(method: Method) -> Self {
        Self {
            methods: vec![method],
            purge: false,
            filter_ratio: None,
        }
    }

    /// Adds a method; its blocks are unioned with the previous ones.
    pub fn also(mut self, method: Method) -> Self {
        self.methods.push(method);
        self
    }

    /// Enables comparison-based block purging.
    pub fn with_purging(mut self) -> Self {
        self.purge = true;
        self
    }

    /// Enables block filtering with the given retain ratio.
    pub fn with_filtering(mut self, ratio: f64) -> Self {
        self.filter_ratio = Some(ratio);
        self
    }

    /// Runs the workflow, returning the final collection and the report.
    pub fn run(&self, dataset: &Dataset, mode: ErMode) -> (BlockCollection, WorkflowReport) {
        let mut report = WorkflowReport::default();
        let mut current = if self.methods.len() == 1 {
            let c = self.methods[0].run(dataset, mode);
            report.record(self.methods[0].name(), &c);
            c
        } else {
            let collections: Vec<BlockCollection> =
                self.methods.iter().map(|m| m.run(dataset, mode)).collect();
            for (m, c) in self.methods.iter().zip(&collections) {
                report.record(m.name(), c);
            }
            let refs: Vec<&BlockCollection> = collections.iter().collect();
            let u = union(dataset, mode, &refs);
            report.record("union", &u);
            u
        };
        if self.purge {
            let outcome = purge::purge(&current);
            current = outcome.collection;
            report.record("purge", &current);
        }
        if let Some(r) = self.filter_ratio {
            current = filter::filter_with(&current, r);
            report.record("filter", &current);
        }
        (current, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minoan_datagen::{generate, profiles};
    use minoan_rdf::DatasetBuilder;

    fn dataset() -> Dataset {
        let mut b = DatasetBuilder::new();
        let k0 = b.add_kb("a", "http://a/");
        let k1 = b.add_kb("b", "http://b/");
        b.add_literal(k0, "http://a/0", "http://p/d", "alpha beta");
        b.add_literal(k1, "http://b/1", "http://p/d", "alpha gamma");
        b.add_literal(k0, "http://a/2", "http://p/d", "beta gamma");
        b.add_literal(k1, "http://b/3", "http://p/d", "delta epsilon");
        b.build()
    }

    #[test]
    fn union_preserves_all_pairs() {
        let ds = dataset();
        let tok = builders::token_blocking(&ds, ErMode::CleanClean);
        let uri = builders::uri_infix_blocking(&ds, ErMode::CleanClean);
        let u = union(&ds, ErMode::CleanClean, &[&tok, &uri]);
        let union_pairs: FxHashSet<_> = u.distinct_pairs().into_iter().collect();
        for p in tok.distinct_pairs() {
            assert!(union_pairs.contains(&p));
        }
        for p in uri.distinct_pairs() {
            assert!(union_pairs.contains(&p));
        }
    }

    #[test]
    fn intersection_is_subset_of_each_input() {
        let ds = dataset();
        let tok = builders::token_blocking(&ds, ErMode::CleanClean);
        let q = qgrams::qgram_blocking(&ds, ErMode::CleanClean, 3);
        let inter = pair_intersection(&[&tok, &q]);
        let tok_pairs: FxHashSet<_> = tok.distinct_pairs().into_iter().collect();
        let q_pairs: FxHashSet<_> = q.distinct_pairs().into_iter().collect();
        for p in &inter {
            assert!(tok_pairs.contains(p) && q_pairs.contains(p));
        }
    }

    #[test]
    fn intersection_of_nothing_is_empty() {
        assert!(pair_intersection(&[]).is_empty());
    }

    #[test]
    fn workflow_single_method_records_one_stage() {
        let ds = dataset();
        let (c, report) = BlockingWorkflow::new(Method::Token).run(&ds, ErMode::CleanClean);
        assert_eq!(report.stages.len(), 1);
        assert_eq!(report.final_comparisons(), c.total_comparisons());
    }

    #[test]
    fn workflow_union_purge_filter_stages() {
        let g = generate(&profiles::center_dense(120, 11));
        let (c, report) = BlockingWorkflow::new(Method::Token)
            .also(Method::UriInfix)
            .with_purging()
            .with_filtering(0.5)
            .run(&g.dataset, ErMode::CleanClean);
        // token, uri-infix, union, purge, filter.
        assert_eq!(report.stages.len(), 5);
        assert_eq!(report.stages[2].0, "union");
        assert_eq!(report.stages[4].0, "filter");
        // Each post-processing stage only reduces comparisons.
        assert!(report.stages[3].2 <= report.stages[2].2);
        assert!(report.stages[4].2 <= report.stages[3].2);
        assert_eq!(c.total_comparisons(), report.final_comparisons());
    }

    #[test]
    fn every_method_runs_on_generated_data() {
        let g = generate(&profiles::center_dense(80, 3));
        let methods = [
            Method::Token,
            Method::UriInfix,
            Method::TokenAndUri,
            Method::AttributeClustering(0.3),
            Method::QGrams(3),
            Method::ExtendedQGrams(3, 0.8),
            Method::SortedNeighborhood(4),
            Method::AdaptiveSortedNeighborhood(4, 32),
            Method::MinHashLsh(LshConfig::default()),
            Method::Canopy(CanopyConfig::default()),
        ];
        for m in methods {
            let c = m.run(&g.dataset, ErMode::CleanClean);
            assert!(!m.name().is_empty());
            // Every method must produce at least one comparison on a dense
            // centre-profile world of duplicates.
            assert!(c.total_comparisons() > 0, "{} produced nothing", m.name());
        }
    }
}
