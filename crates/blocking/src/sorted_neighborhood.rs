//! Sorted-neighborhood blocking.
//!
//! The Sorted Neighborhood Method (SNM, Hernández & Stolfo) sorts all
//! descriptions by a blocking key and compares only descriptions within a
//! sliding window. The schema-agnostic adaptation used for the Web of Data
//! (Papadakis et al.'s "sorted blocks" family) has no single record key;
//! instead **every token is a sort key**: the `(token, entity)` pairs are
//! sorted lexicographically and the window slides over the resulting entity
//! sequence, so descriptions sharing rare adjacent tokens end up close.
//!
//! Both variants below emit ordinary [`BlockCollection`]s (one block per
//! window / key run), so purging, filtering and meta-blocking compose with
//! them unchanged — overlapping windows create exactly the repeated
//! comparisons meta-blocking exists to prune.

use crate::collection::{BlockCollection, ErMode};
use minoan_rdf::{Dataset, EntityId};

/// The sorted `(token, entity)` array underlying both variants.
///
/// Tokens are the schema-agnostic blocking tokens of each description
/// (literal value tokens + URI-infix tokens), deduplicated per entity.
pub fn sorted_token_entities(dataset: &Dataset) -> Vec<(String, EntityId)> {
    let mut pairs: Vec<(String, EntityId)> = Vec::new();
    for e in dataset.entities() {
        let mut tokens = dataset.blocking_tokens(e);
        tokens.sort_unstable();
        tokens.dedup();
        for t in tokens {
            pairs.push((t, e));
        }
    }
    pairs.sort_unstable();
    pairs
}

/// Fixed-window sorted neighborhood: one block per window of `window`
/// consecutive entries in the sorted token–entity array.
///
/// Consecutive duplicate entities inside a window are deduplicated by the
/// collection; windows that induce no comparison are dropped.
///
/// # Panics
/// Panics if `window < 2` (a window of one entity induces no comparison).
pub fn sorted_neighborhood(dataset: &Dataset, mode: ErMode, window: usize) -> BlockCollection {
    assert!(window >= 2, "window must hold at least two entries");
    let pairs = sorted_token_entities(dataset);
    let mut groups: Vec<(String, Vec<EntityId>)> = Vec::new();
    if pairs.len() >= window {
        for (i, w) in pairs.windows(window).enumerate() {
            let members: Vec<EntityId> = w.iter().map(|(_, e)| *e).collect();
            groups.push((format!("snw:{i:08}"), members));
        }
    } else if !pairs.is_empty() {
        groups.push((
            "snw:00000000".to_string(),
            pairs.iter().map(|(_, e)| *e).collect(),
        ));
    }
    BlockCollection::from_groups(dataset, mode, groups)
}

/// Adaptive sorted neighborhood: instead of a fixed window, the entity
/// sequence is cut wherever the sort key changes by more than a shared
/// prefix of `prefix_len` characters — runs of near-identical keys form one
/// block each, so dense key regions get wide windows and sparse regions
/// narrow ones (the "incrementally adaptive SNM" idea of Yan et al.).
///
/// `max_block` caps a run (guards against degenerate all-same-prefix data).
///
/// # Panics
/// Panics if `prefix_len == 0` or `max_block < 2`.
pub fn adaptive_sorted_neighborhood(
    dataset: &Dataset,
    mode: ErMode,
    prefix_len: usize,
    max_block: usize,
) -> BlockCollection {
    assert!(prefix_len > 0, "prefix length must be positive");
    assert!(max_block >= 2, "maximum block size must hold a pair");
    let pairs = sorted_token_entities(dataset);
    let mut groups: Vec<(String, Vec<EntityId>)> = Vec::new();
    let mut run: Vec<EntityId> = Vec::new();
    let mut run_prefix: Option<String> = None;
    let mut run_id = 0usize;
    let flush =
        |run: &mut Vec<EntityId>, run_id: &mut usize, groups: &mut Vec<(String, Vec<EntityId>)>| {
            if run.len() >= 2 {
                groups.push((format!("asn:{:08}", *run_id), std::mem::take(run)));
                *run_id += 1;
            } else {
                run.clear();
            }
        };
    for (token, e) in &pairs {
        let prefix: String = token.chars().take(prefix_len).collect();
        let same = run_prefix.as_deref() == Some(prefix.as_str());
        if !same || run.len() >= max_block {
            flush(&mut run, &mut run_id, &mut groups);
            run_prefix = Some(prefix);
        }
        run.push(*e);
    }
    flush(&mut run, &mut run_id, &mut groups);
    BlockCollection::from_groups(dataset, mode, groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minoan_rdf::DatasetBuilder;

    /// Two KBs; e0/e2 share the rare token "zyzzyva", e1 is unrelated.
    fn dataset() -> Dataset {
        let mut b = DatasetBuilder::new();
        let k0 = b.add_kb("a", "http://a/");
        let k1 = b.add_kb("b", "http://b/");
        b.add_literal(k0, "http://a/0", "http://p/label", "zyzzyva insect");
        b.add_literal(k0, "http://a/1", "http://p/label", "unrelated words");
        b.add_literal(k1, "http://b/2", "http://p/label", "zyzzyva beetle");
        b.add_literal(k1, "http://b/3", "http://p/label", "different thing");
        b.build()
    }

    #[test]
    fn sorted_array_is_sorted_and_deduped() {
        let ds = dataset();
        let pairs = sorted_token_entities(&ds);
        assert!(pairs.windows(2).all(|w| w[0] <= w[1]));
        // Each (token, entity) appears once.
        let mut seen = pairs.clone();
        seen.dedup();
        assert_eq!(seen.len(), pairs.len());
    }

    #[test]
    fn window_blocks_pair_adjacent_rare_tokens() {
        let ds = dataset();
        let blocks = sorted_neighborhood(&ds, ErMode::CleanClean, 2);
        // "zyzzyva" entries from e0 and e2 are adjacent in the sort → some
        // window holds both, hence a cross-KB comparison of (0, 2).
        let pairs = blocks.distinct_pairs();
        assert!(
            pairs.contains(&(EntityId(0), EntityId(2))),
            "expected (e0,e2) among {pairs:?}"
        );
    }

    #[test]
    fn wider_window_yields_superset_of_pairs() {
        let ds = dataset();
        let narrow = sorted_neighborhood(&ds, ErMode::CleanClean, 2).distinct_pairs();
        let wide = sorted_neighborhood(&ds, ErMode::CleanClean, 4).distinct_pairs();
        for p in &narrow {
            assert!(wide.contains(p), "wide window lost pair {p:?}");
        }
        assert!(wide.len() >= narrow.len());
    }

    #[test]
    #[should_panic(expected = "window")]
    fn window_of_one_rejected() {
        sorted_neighborhood(&dataset(), ErMode::CleanClean, 1);
    }

    #[test]
    fn adaptive_groups_shared_prefixes() {
        let ds = dataset();
        let blocks = adaptive_sorted_neighborhood(&ds, ErMode::CleanClean, 4, 64);
        let pairs = blocks.distinct_pairs();
        assert!(
            pairs.contains(&(EntityId(0), EntityId(2))),
            "zyzz-prefix run should pair e0 and e2: {pairs:?}"
        );
    }

    #[test]
    fn adaptive_respects_max_block() {
        let ds = dataset();
        let blocks = adaptive_sorted_neighborhood(&ds, ErMode::Dirty, 1, 2);
        for b in blocks.blocks() {
            assert!(b.len() <= 2, "block exceeds cap: {}", b.len());
        }
    }

    #[test]
    fn tiny_dataset_single_window() {
        let mut b = DatasetBuilder::new();
        let k0 = b.add_kb("a", "http://a/");
        let k1 = b.add_kb("b", "http://b/");
        b.add_literal(k0, "http://a/0", "http://p/x", "quince");
        b.add_literal(k1, "http://b/1", "http://p/x", "rhubarb");
        let ds = b.build();
        // Window larger than the token array → one catch-all block.
        let blocks = sorted_neighborhood(&ds, ErMode::CleanClean, 10);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks.total_comparisons(), 1);
    }

    #[test]
    fn empty_dataset_yields_no_blocks() {
        let ds = DatasetBuilder::new().build();
        assert!(sorted_neighborhood(&ds, ErMode::Dirty, 2).is_empty());
        assert!(adaptive_sorted_neighborhood(&ds, ErMode::Dirty, 3, 8).is_empty());
    }
}
