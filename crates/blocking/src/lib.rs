//! Blocking for entity resolution in the Web of Data.
//!
//! "Blocking places similar entity descriptions into blocks, leaving to the
//! entity matching algorithm the comparisons only between descriptions
//! within the same block" (paper §1). Following the paper, all blocking
//! here is **schema-agnostic**: keys come from tokens of attribute values
//! and URIs, never from schema knowledge.
//!
//! # The flat layout
//!
//! The paper's pipeline is *block building → block purging → block
//! filtering → meta-blocking*, and on power-law token-blocking output the
//! first three stages dominate end-to-end wall clock once meta-blocking
//! runs on the CSR graph. The whole layer is therefore flat and
//! string-free, mirroring `metablocking::graph`:
//!
//! * **Build** — the token/URI builders intern each token into a
//!   [`Symbol`](minoan_common::Symbol) *during* tokenisation
//!   ([`collection::KeyAssignments`]); no owned key string is ever
//!   accumulated per token occurrence. The collection is assembled by a
//!   two-pass counting sort ([`BlockCollection::from_assignments`]) into
//!   two CSR slab pairs — `block_offsets`/`block_entities` (block →
//!   sorted members) and `entity_offsets`/`entity_block_ids` (entity →
//!   sorted block ids) — plus per-block comparison counts and the
//!   precomputed ARCS reciprocal `1/‖b‖` slab the meta-blocking sweeps
//!   read directly. The sort is thread-parallel over entity ranges
//!   (`std::thread::scope`) and bit-identical for every thread count.
//! * **Purge** ([`purge`]) — the comparison-cardinality scan reads the
//!   per-block slab and emits a per-block retain mask; the successor is
//!   written straight into fresh slabs (kept member runs are memcpy'd,
//!   ids remapped, interner shared). Nothing is re-hashed or re-interned.
//! * **Filter** ([`filter`]) — one pass over the inverted slab marks the
//!   retained `(entity, block)` assignments in a mask (reused scratch +
//!   `select_nth_unstable_by_key` keep-`k` split per entity); the masked
//!   assignments are counting-sorted into the successor's slabs and
//!   blocks left without comparisons are dropped by the same id remap.
//!
//! The string-keyed [`BlockCollection::from_groups`] remains as the
//! compatibility path for blockers whose keys are composed strings
//! (windows, q-grams, LSH bands, unions); it produces identical
//! collections for the same logical groups.
//!
//! # Modules
//!
//! * [`builders`] — token blocking, Prefix-Infix(-Suffix) URI blocking,
//!   attribute-clustering blocking, and their combination.
//! * [`collection`] — the [`BlockCollection`] representation shared with
//!   meta-blocking (CSR slabs, per-entity block lists, comparison
//!   counting for dirty and clean–clean ER).
//! * [`delta`] — the updatable arm: [`delta::IncrementalCollection`]
//!   maintains the token-blocking state under batched arrivals by
//!   delta-appending sorted member runs per interned key (comparisons
//!   and presence recomputed only for touched keys) and reports the
//!   dirty block/entity sets the meta-blocking delta-sweep consumes.
//! * `layout` *(crate-internal)* — the counting-sort CSR transpose every
//!   construction path is built on, plus the backward sorted-merge
//!   delta-append primitive.
//! * [`purge`] — comparison-based block purging (drops oversized blocks).
//! * [`filter`] — block filtering (each entity keeps its `r`% smallest
//!   blocks).
//! * [`schedule`] — block scheduling: the classic pay-as-you-go ordering
//!   of comparisons by block utility (a progressive baseline).
//! * [`parallel`] — token blocking as a MapReduce job on
//!   [`minoan_mapreduce::Engine`], the substrate of reference \[5\].
//!
//! # Example
//!
//! ```
//! use minoan_datagen::{generate, profiles};
//! use minoan_blocking::{builders, filter, purge, ErMode};
//!
//! let g = generate(&profiles::center_dense(150, 7));
//! // Build → purge → filter: the paper's block cleaning pipeline.
//! let blocks = builders::token_blocking(&g.dataset, ErMode::CleanClean);
//! let cleaned = filter::filter(&purge::purge(&blocks).collection);
//! assert!(cleaned.len() > 0);
//! assert!(cleaned.total_comparisons() <= blocks.total_comparisons());
//! // Slice accessors read straight from the slabs.
//! let b = cleaned.block(minoan_blocking::BlockId(0));
//! assert_eq!(b.entities, cleaned.block_entities(b.id));
//! ```

#![forbid(unsafe_code)]

pub mod builders;
pub mod canopy;
pub mod collection;
pub mod composite;
pub mod delta;
pub mod filter;
mod layout;
pub mod lsh;
pub mod parallel;
pub mod purge;
pub mod qgrams;
pub mod schedule;
pub mod sorted_neighborhood;

pub use canopy::{canopy_blocking, CanopyConfig};
pub use collection::{BlockCollection, BlockId, BlockRef, ErMode, KeyAssignments};
pub use composite::{pair_intersection, union, BlockingWorkflow, Method, WorkflowReport};
pub use delta::{DeltaOutcome, IncrementalCollection};
pub use lsh::{minhash_lsh_blocking, LshConfig};
pub use qgrams::{extended_qgram_blocking, qgram_blocking};
pub use sorted_neighborhood::{adaptive_sorted_neighborhood, sorted_neighborhood};
