//! Blocking for entity resolution in the Web of Data.
//!
//! "Blocking places similar entity descriptions into blocks, leaving to the
//! entity matching algorithm the comparisons only between descriptions
//! within the same block" (paper §1). Following the paper, all blocking
//! here is **schema-agnostic**: keys come from tokens of attribute values
//! and URIs, never from schema knowledge.
//!
//! * [`builders`] — token blocking, Prefix-Infix(-Suffix) URI blocking,
//!   attribute-clustering blocking, and their combination.
//! * [`collection`] — the [`BlockCollection`] representation shared with
//!   meta-blocking (blocks, per-entity block lists, comparison counting for
//!   dirty and clean–clean ER).
//! * [`purge`] — comparison-based block purging (drops oversized blocks).
//! * [`filter`] — block filtering (each entity keeps its `r`% smallest
//!   blocks).
//! * [`schedule`] — block scheduling: the classic pay-as-you-go ordering
//!   of comparisons by block utility (a progressive baseline).
//! * [`parallel`] — token blocking as a MapReduce job on
//!   [`minoan_mapreduce::Engine`], the substrate of reference \[5\].
//!
//! # Example
//!
//! ```
//! use minoan_datagen::{generate, profiles};
//! use minoan_blocking::{builders, ErMode};
//!
//! let g = generate(&profiles::center_dense(150, 7));
//! let blocks = builders::token_blocking(&g.dataset, ErMode::CleanClean);
//! assert!(blocks.len() > 0);
//! assert!(blocks.total_comparisons() > 0);
//! ```

pub mod builders;
pub mod canopy;
pub mod collection;
pub mod composite;
pub mod filter;
pub mod lsh;
pub mod parallel;
pub mod purge;
pub mod qgrams;
pub mod schedule;
pub mod sorted_neighborhood;

pub use canopy::{canopy_blocking, CanopyConfig};
pub use collection::{Block, BlockCollection, BlockId, ErMode};
pub use composite::{pair_intersection, union, BlockingWorkflow, Method, WorkflowReport};
pub use lsh::{minhash_lsh_blocking, LshConfig};
pub use qgrams::{extended_qgram_blocking, qgram_blocking};
pub use sorted_neighborhood::{adaptive_sorted_neighborhood, sorted_neighborhood};
