//! Blocking-key extractors.
//!
//! All builders are schema-agnostic per the paper: keys are tokens of
//! attribute values and URIs, with no assumptions about the schema.
//!
//! The token/URI builders are **string-free end to end**: tokens are
//! interned into [`Symbol`](minoan_common::Symbol)s *during* tokenisation
//! (through [`KeyAssignments`]) instead of accumulating a
//! `HashMap<String, Vec<EntityId>>` of owned groups, and the collection is
//! assembled by the counting-sort CSR build
//! ([`BlockCollection::from_assignments`]). URI keys live in a disjoint
//! `uri:` symbol namespace composed without a `format!` per token.

use crate::collection::{BlockCollection, ErMode, KeyAssignments};
use minoan_common::{FxHashMap, FxHashSet, UnionFind};
use minoan_rdf::tokenize::{self, TokenBuffers};
use minoan_rdf::{Dataset, Value};

/// Namespace prefix keeping URI-infix keys disjoint from value-token keys.
const URI_PREFIX: &str = "uri:";

/// Token blocking: one block per distinct token appearing in any attribute
/// value (literal tokens + resource-URI infix tokens) of a description.
pub fn token_blocking(dataset: &Dataset, mode: ErMode) -> BlockCollection {
    let mut asg = KeyAssignments::with_capacity(dataset.len());
    let mut buffers = TokenBuffers::default();
    for e in dataset.entities() {
        dataset.for_each_blocking_token(e, &mut buffers, |tok| asg.push_key(tok));
        asg.seal_entity();
    }
    BlockCollection::from_assignments(dataset, mode, asg)
}

/// Prefix-Infix(-Suffix) URI blocking: one block per token of the subject
/// URI's *infix* — naming evidence independent of attribute values.
pub fn uri_infix_blocking(dataset: &Dataset, mode: ErMode) -> BlockCollection {
    let mut asg = KeyAssignments::with_capacity(dataset.len());
    let mut buffers = TokenBuffers::default();
    for e in dataset.entities() {
        tokenize::uri_infix_tokens_with(dataset.uri(e), &mut buffers, |tok| {
            asg.push_key_prefixed(URI_PREFIX, tok)
        });
        asg.seal_entity();
    }
    BlockCollection::from_assignments(dataset, mode, asg)
}

/// Token blocking ∪ URI-infix blocking — the paper's "common token in their
/// descriptions *or URIs*" criterion in one collection. Key spaces are kept
/// disjoint by the `uri:` prefix.
pub fn token_and_uri_blocking(dataset: &Dataset, mode: ErMode) -> BlockCollection {
    let mut asg = KeyAssignments::with_capacity(dataset.len());
    let mut buffers = TokenBuffers::default();
    for e in dataset.entities() {
        dataset.for_each_blocking_token(e, &mut buffers, |tok| asg.push_key(tok));
        tokenize::uri_infix_tokens_with(dataset.uri(e), &mut buffers, |tok| {
            asg.push_key_prefixed(URI_PREFIX, tok)
        });
        asg.seal_entity();
    }
    BlockCollection::from_assignments(dataset, mode, asg)
}

/// Attribute-clustering blocking (Papadakis et al. style): attribute names
/// are clustered across KBs by the similarity of their aggregate value
/// token sets; token keys are then qualified by cluster id, so the same
/// token in *unrelated* attributes no longer collides.
///
/// `link_threshold` is the minimum token-Jaccard between two attributes'
/// value vocabularies for them to be linked (clusters = connected
/// components of best-match links). Attributes that match nothing form
/// singleton clusters; a shared "glue" cluster is NOT used — unmatched
/// attributes keep their own key space, which is what prunes the false
/// conflicts.
pub fn attribute_clustering_blocking(
    dataset: &Dataset,
    mode: ErMode,
    link_threshold: f64,
) -> BlockCollection {
    // 1. Aggregate value-token vocabulary per (kb, attribute symbol).
    //    Attribute identity must be KB-scoped: the same predicate IRI in two
    //    KBs is still clustered (its token sets will be near-identical).
    let mut vocab: FxHashMap<(u16, u32), FxHashSet<String>> = FxHashMap::default();
    for e in dataset.entities() {
        let kb = dataset.kb_of(e).0;
        let d = dataset.description(e);
        for (p, v) in &d.attributes {
            let toks = match v {
                Value::Literal(s) => tokenize::value_tokens(s).collect::<Vec<_>>(),
                Value::Resource(u) => tokenize::uri_infix_tokens(u),
            };
            let entry = vocab.entry((kb, p.0)).or_default();
            for t in toks {
                entry.insert(t);
            }
        }
    }
    let mut attrs: Vec<((u16, u32), FxHashSet<String>)> = vocab.into_iter().collect();
    attrs.sort_unstable_by_key(|(k, _)| *k);

    // 2. Best-match links across KBs, kept when above the threshold.
    let n = attrs.len();
    let mut uf = UnionFind::new(n);
    for i in 0..n {
        let mut best: Option<(usize, f64)> = None;
        for j in 0..n {
            if attrs[i].0 .0 == attrs[j].0 .0 {
                continue; // same KB
            }
            let sim = set_jaccard(&attrs[i].1, &attrs[j].1);
            if sim >= link_threshold && best.map(|(_, s)| sim > s).unwrap_or(true) {
                best = Some((j, sim));
            }
        }
        if let Some((j, _)) = best {
            uf.union(i as u32, j as u32);
        }
    }
    let cluster_of: FxHashMap<(u16, u32), u32> = attrs
        .iter()
        .enumerate()
        .map(|(i, (key, _))| (*key, uf.find(i as u32)))
        .collect();

    // 3. Cluster-qualified token keys: one `c{cluster}:` prefix composed
    //    per attribute occurrence, then interned per token — no owned key
    //    string per token occurrence.
    let mut asg = KeyAssignments::with_capacity(dataset.len());
    let mut buffers = TokenBuffers::default();
    // lint:allow(hot-path-alloc): one buffer reused across all attribute occurrences
    let mut prefix = String::new();
    for e in dataset.entities() {
        let kb = dataset.kb_of(e).0;
        let d = dataset.description(e);
        for (p, v) in &d.attributes {
            let Some(&cluster) = cluster_of.get(&(kb, p.0)) else {
                continue;
            };
            use std::fmt::Write as _;
            prefix.clear();
            let _ = write!(prefix, "c{cluster}:");
            match v {
                Value::Literal(s) => tokenize::value_tokens_with(s, &mut buffers, |tok| {
                    asg.push_key_prefixed(&prefix, tok)
                }),
                Value::Resource(u) => tokenize::uri_infix_tokens_with(u, &mut buffers, |tok| {
                    asg.push_key_prefixed(&prefix, tok)
                }),
            }
        }
        asg.seal_entity();
    }
    BlockCollection::from_assignments(dataset, mode, asg)
}

fn set_jaccard(a: &FxHashSet<String>, b: &FxHashSet<String>) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use minoan_datagen::{generate, profiles};
    use minoan_rdf::{DatasetBuilder, EntityId};

    fn toy() -> Dataset {
        let mut b = DatasetBuilder::new();
        let k0 = b.add_kb("a", "http://a/r/");
        let k1 = b.add_kb("b", "http://b/r/");
        b.add_literal(
            k0,
            "http://a/r/Knossos_Palace",
            "http://a/o/label",
            "Knossos palace Crete",
        );
        b.add_literal(k0, "http://a/r/Athens", "http://a/o/label", "Athens Greece");
        b.add_literal(
            k1,
            "http://b/r/Knossos",
            "http://b/o/name",
            "Knossos ruins Crete",
        );
        b.add_literal(k1, "http://b/r/Sparta", "http://b/o/name", "Sparta Greece");
        b.build()
    }

    #[test]
    fn token_blocking_groups_by_common_tokens() {
        let ds = toy();
        let c = token_blocking(&ds, ErMode::CleanClean);
        let keys: Vec<&str> = (0..c.len())
            .map(|i| c.key_str(crate::BlockId(i as u32)))
            .collect();
        assert!(keys.contains(&"knossos"));
        assert!(keys.contains(&"crete"));
        assert!(keys.contains(&"greece"));
        // "palace" appears only in KB a → no cross-KB comparison → dropped.
        assert!(!keys.contains(&"palace"));
    }

    #[test]
    fn uri_blocking_uses_infixes_only() {
        let ds = toy();
        let c = uri_infix_blocking(&ds, ErMode::CleanClean);
        let keys: Vec<&str> = (0..c.len())
            .map(|i| c.key_str(crate::BlockId(i as u32)))
            .collect();
        assert_eq!(keys, vec!["uri:knossos"]);
    }

    #[test]
    fn combined_blocking_is_superset() {
        let ds = toy();
        let t = token_blocking(&ds, ErMode::CleanClean);
        let u = uri_infix_blocking(&ds, ErMode::CleanClean);
        let both = token_and_uri_blocking(&ds, ErMode::CleanClean);
        assert_eq!(both.len(), t.len() + u.len());
        assert!(both.distinct_pairs().len() >= t.distinct_pairs().len());
    }

    /// The string-free builders must reproduce the legacy string-grouped
    /// path exactly (same keys, members, comparisons, inverted index).
    #[test]
    fn symbol_path_matches_string_grouped_reference() {
        let g = generate(&profiles::center_dense(120, 17));
        let ds = &g.dataset;
        // Reference: the pre-flat builder shape — owned token strings
        // grouped through a hash map, then `from_groups`.
        let mut groups: FxHashMap<String, Vec<EntityId>> = FxHashMap::default();
        for e in ds.entities() {
            let mut tokens: Vec<String> = ds.blocking_tokens(e);
            tokens.sort_unstable();
            tokens.dedup();
            for t in tokens {
                groups.entry(t).or_default().push(e);
            }
            let mut utoks = tokenize::uri_infix_tokens(ds.uri(e));
            utoks.sort_unstable();
            utoks.dedup();
            for t in utoks {
                groups.entry(format!("uri:{t}")).or_default().push(e);
            }
        }
        let reference = BlockCollection::from_groups(ds, ErMode::CleanClean, groups);
        let c = token_and_uri_blocking(ds, ErMode::CleanClean);
        assert_eq!(c.len(), reference.len());
        for (a, b) in c.blocks().zip(reference.blocks()) {
            assert_eq!(c.key_str(a.id), reference.key_str(b.id));
            assert_eq!(a.entities, b.entities);
            assert_eq!(a.comparisons, b.comparisons);
        }
        for e in ds.entities() {
            assert_eq!(c.entity_blocks(e), reference.entity_blocks(e));
        }
    }

    #[test]
    fn token_blocking_finds_most_true_pairs_on_center_data() {
        let g = generate(&profiles::center_dense(150, 21));
        let c = token_blocking(&g.dataset, ErMode::CleanClean);
        let pairs: std::collections::HashSet<_> = c.distinct_pairs().into_iter().collect();
        let found = g
            .truth
            .matching_pair_iter()
            .filter(|&(a, b)| pairs.contains(&(a, b)))
            .count() as u64;
        let pc = found as f64 / g.truth.matching_pairs() as f64;
        assert!(
            pc > 0.95,
            "token blocking PC on easy data should be ≈1, got {pc}"
        );
    }

    #[test]
    fn attribute_clustering_reduces_comparisons_vs_token_blocking() {
        let g = generate(&profiles::center_dense(200, 5));
        let tb = token_blocking(&g.dataset, ErMode::CleanClean);
        let ac = attribute_clustering_blocking(&g.dataset, ErMode::CleanClean, 0.2);
        assert!(
            ac.total_comparisons() < tb.total_comparisons(),
            "clustering {} should cut comparisons vs token {}",
            ac.total_comparisons(),
            tb.total_comparisons()
        );
        // ...while keeping decent recall.
        let pairs: std::collections::HashSet<_> = ac.distinct_pairs().into_iter().collect();
        let found = g
            .truth
            .matching_pair_iter()
            .filter(|&(a, b)| pairs.contains(&(a, b)))
            .count();
        let pc = found as f64 / g.truth.matching_pairs() as f64;
        assert!(pc > 0.8, "attribute clustering PC too low: {pc}");
    }

    #[test]
    fn dirty_mode_blocks_within_one_kb() {
        let g = generate(&profiles::dirty_single(80, 9));
        let c = token_blocking(&g.dataset, ErMode::Dirty);
        assert!(c.total_comparisons() > 0);
        let pairs: std::collections::HashSet<_> = c.distinct_pairs().into_iter().collect();
        let found = g
            .truth
            .matching_pair_iter()
            .filter(|&(a, b)| pairs.contains(&(a, b)))
            .count() as u64;
        assert!(found as f64 / g.truth.matching_pairs() as f64 > 0.9);
    }

    #[test]
    fn empty_dataset_produces_empty_collection() {
        let ds = DatasetBuilder::new().build();
        let c = token_blocking(&ds, ErMode::CleanClean);
        assert!(c.is_empty());
    }
}
