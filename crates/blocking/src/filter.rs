//! Block filtering.
//!
//! After purging, individual entities can still sit in very many blocks.
//! Block filtering (Papadakis et al.) keeps, for every entity, only the
//! `ratio` fraction of its blocks with the *fewest* comparisons — the most
//! discriminative evidence — and rebuilds the collection from the retained
//! (entity, block) assignments.

use crate::collection::{BlockCollection, ErMode};
// lint:allow(hash-order-leak): import feeds only the legacy oracle below
use minoan_common::{default_threads, FxHashMap};
use minoan_rdf::EntityId;

/// Default retain ratio from the literature.
pub const DEFAULT_RATIO: f64 = 0.8;

/// Applies block filtering with `ratio` ∈ (0, 1]; each entity keeps
/// `ceil(ratio × |blocks(e)|)` of its smallest blocks.
///
/// This is a pure *index pass* over the flat collection: one scan of the
/// inverted slab marks the retained `(entity, block)` assignments in a
/// mask, using a single reused scratch buffer and an `O(|blocks(e)|)`
/// `select_nth_unstable_by_key` split per entity (fewest comparisons
/// first, ties by block id — the same deterministic keep set as a full
/// sort). The successor collection is then written straight into fresh
/// slabs with remapped block ids — no hash maps, no re-interning, no
/// per-entity copies of the block lists.
pub fn filter_with(collection: &BlockCollection, ratio: f64) -> BlockCollection {
    filter_with_threads(collection, ratio, default_threads())
}

/// As [`filter_with`] with an explicit worker count for the successor's
/// slab build (the pipeline threads its `workers` knob through here).
/// The result never depends on `threads`.
pub fn filter_with_threads(
    collection: &BlockCollection,
    ratio: f64,
    threads: usize,
) -> BlockCollection {
    assert!(
        ratio > 0.0 && ratio <= 1.0,
        "ratio must be in (0,1], got {ratio}"
    );
    let mut keep_mask = vec![false; collection.total_assignments() as usize];
    // Reused scratch of in-run indices — sized once to the largest run.
    let mut scratch: Vec<u32> = Vec::new();
    let mut offset = 0usize;
    for e in 0..collection.num_entities() as u32 {
        let bs = collection.entity_blocks(EntityId(e));
        if bs.is_empty() {
            continue;
        }
        let keep = ((ratio * bs.len() as f64).ceil() as usize).clamp(1, bs.len());
        scratch.clear();
        scratch.extend(0..bs.len() as u32);
        if keep < bs.len() {
            // Partition: the `keep` smallest (comparisons, id) keys land in
            // scratch[..keep]. Keys are distinct (ids break ties), so the
            // kept *set* equals the full sort's prefix.
            scratch.select_nth_unstable_by_key(keep - 1, |&i| {
                let b = bs[i as usize];
                (collection.block_comparisons(b), b)
            });
        }
        for &i in &scratch[..keep] {
            keep_mask[offset + i as usize] = true;
        }
        offset += bs.len();
    }
    collection.retain_assignments(&keep_mask, threads)
}

/// The pre-flat filter: per-entity `to_vec` + full sort, hash-map
/// regrouping of the retained assignments, and the legacy owned-`Vec`
/// rebuild. Kept **only** as the measured baseline and equivalence oracle
/// for [`filter_with`] — see the `blocking_layout` suite and the
/// `blockbuild` bench family.
#[doc(hidden)]
pub fn legacy_filter_with(collection: &BlockCollection, ratio: f64) -> BlockCollection {
    assert!(
        ratio > 0.0 && ratio <= 1.0,
        "ratio must be in (0,1], got {ratio}"
    );
    // lint:allow(hash-order-leak): legacy oracle; entries sorted by block id before rebuild
    let mut retained: FxHashMap<u32, Vec<EntityId>> = FxHashMap::default();
    for e in 0..collection.num_entities() as u32 {
        let e = EntityId(e);
        let bs = collection.entity_blocks(e);
        if bs.is_empty() {
            continue;
        }
        let keep = ((ratio * bs.len() as f64).ceil() as usize).clamp(1, bs.len());
        let mut sorted: Vec<_> = bs.to_vec();
        // Fewest comparisons first; ties by id for determinism.
        sorted.sort_by_key(|&b| (collection.block_comparisons(b), b));
        for &b in sorted.iter().take(keep) {
            retained.entry(b.0).or_default().push(e);
        }
    }
    let mut blocks: Vec<_> = retained.into_iter().collect();
    blocks.sort_unstable_by_key(|(b, _)| *b);
    let rebuilt: Vec<_> = blocks
        .into_iter()
        .map(|(b, members)| (collection.block_key(crate::BlockId(b)), members))
        .collect();
    // lint:allow(legacy-oracle-reach): this IS the legacy oracle's own body
    collection.rebuild_from_blocks(rebuilt)
}

/// Block filtering with the standard ratio 0.8.
pub fn filter(collection: &BlockCollection) -> BlockCollection {
    filter_with(collection, DEFAULT_RATIO)
}

/// Convenience: the standard cleaning pipeline `purge → filter`.
pub fn clean(collection: &BlockCollection) -> BlockCollection {
    let purged = crate::purge::purge(collection);
    filter(&purged.collection)
}

/// Re-exported for symmetry with the other cleaning steps.
pub fn mode_of(collection: &BlockCollection) -> ErMode {
    collection.mode()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::token_blocking;
    use crate::collection::ErMode;
    use minoan_datagen::{generate, profiles};

    #[test]
    fn filtering_reduces_comparisons() {
        let g = generate(&profiles::center_dense(250, 4));
        let c = token_blocking(&g.dataset, ErMode::CleanClean);
        let f = filter_with(&c, 0.5);
        assert!(f.total_comparisons() < c.total_comparisons());
        assert!(f.total_assignments() < c.total_assignments());
    }

    #[test]
    fn ratio_one_changes_nothing_structurally() {
        let g = generate(&profiles::center_dense(100, 4));
        let c = token_blocking(&g.dataset, ErMode::CleanClean);
        let f = filter_with(&c, 1.0);
        assert_eq!(f.total_assignments(), c.total_assignments());
        assert_eq!(f.total_comparisons(), c.total_comparisons());
        assert_eq!(f.len(), c.len());
    }

    #[test]
    fn every_blocked_entity_keeps_at_least_one_block() {
        let g = generate(&profiles::center_dense(150, 6));
        let c = token_blocking(&g.dataset, ErMode::CleanClean);
        let f = filter_with(&c, 0.3);
        // Entities may drop out only if all their retained blocks lost their
        // cross-KB partners; the vast majority must remain placed.
        assert!(f.placed_entities() as f64 >= 0.8 * c.placed_entities() as f64);
    }

    #[test]
    fn filtering_keeps_recall_reasonable() {
        let g = generate(&profiles::center_dense(200, 10));
        let c = token_blocking(&g.dataset, ErMode::CleanClean);
        let f = filter(&c);
        let pairs: std::collections::HashSet<_> = f.distinct_pairs().into_iter().collect();
        let found = g
            .truth
            .matching_pair_iter()
            .filter(|&(a, b)| pairs.contains(&(a, b)))
            .count() as f64;
        let pc = found / g.truth.matching_pairs() as f64;
        assert!(pc > 0.85, "filtering lost too much recall: {pc}");
    }

    #[test]
    fn clean_pipeline_composes() {
        let g = generate(&profiles::center_dense(200, 12));
        let c = token_blocking(&g.dataset, ErMode::CleanClean);
        let cleaned = clean(&c);
        assert!(cleaned.total_comparisons() < c.total_comparisons());
        assert_eq!(mode_of(&cleaned), ErMode::CleanClean);
    }

    #[test]
    fn mask_filter_matches_legacy_filter() {
        for (n, seed) in [(120usize, 3u64), (200, 7)] {
            let g = generate(&profiles::center_dense(n, seed));
            let c = token_blocking(&g.dataset, ErMode::CleanClean);
            for ratio in [0.3, 0.5, 0.8, 1.0] {
                let fast = filter_with(&c, ratio);
                let legacy = legacy_filter_with(&c, ratio);
                assert_eq!(fast.len(), legacy.len(), "ratio {ratio}");
                for (a, b) in fast.blocks().zip(legacy.blocks()) {
                    assert_eq!(fast.key_str(a.id), legacy.key_str(b.id));
                    assert_eq!(a.entities, b.entities);
                    assert_eq!(a.comparisons, b.comparisons);
                }
                for e in g.dataset.entities() {
                    assert_eq!(fast.entity_blocks(e), legacy.entity_blocks(e));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "ratio")]
    fn zero_ratio_panics() {
        let g = generate(&profiles::center_dense(50, 1));
        let c = token_blocking(&g.dataset, ErMode::CleanClean);
        let _ = filter_with(&c, 0.0);
    }
}
