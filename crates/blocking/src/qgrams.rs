//! Q-grams blocking.
//!
//! Token blocking requires an *exact* common token; typos and morphological
//! variation ("Heraklion" vs "Iraklion") defeat it. Q-grams blocking keys
//! on character q-grams of the tokens instead, so descriptions sharing most
//! of a token's characters still co-occur. Extended q-grams raises
//! precision back up by keying on *combinations* of q-grams, requiring
//! several shared q-grams before two descriptions meet.

use crate::collection::{BlockCollection, ErMode};
use minoan_common::{FxHashMap, FxHashSet};
use minoan_rdf::{Dataset, EntityId};

/// Character q-grams of a token. Tokens shorter than `q` yield themselves.
pub fn qgrams(token: &str, q: usize) -> Vec<String> {
    let chars: Vec<char> = token.chars().collect();
    if chars.len() <= q {
        return vec![token.to_string()];
    }
    chars.windows(q).map(|w| w.iter().collect()).collect()
}

/// Q-grams blocking: one block per distinct q-gram of any blocking token.
///
/// # Panics
/// Panics if `q == 0`.
pub fn qgram_blocking(dataset: &Dataset, mode: ErMode, q: usize) -> BlockCollection {
    assert!(q > 0, "q must be positive");
    let mut groups: FxHashMap<String, Vec<EntityId>> = FxHashMap::default();
    for e in dataset.entities() {
        let mut keys: FxHashSet<String> = FxHashSet::default();
        for token in dataset.blocking_tokens(e) {
            for g in qgrams(&token, q) {
                keys.insert(g);
            }
        }
        let mut keys: Vec<String> = keys.into_iter().collect();
        keys.sort_unstable();
        for k in keys {
            groups.entry(k).or_default().push(e);
        }
    }
    BlockCollection::from_groups(dataset, mode, groups)
}

/// Upper bound on the number of q-gram combinations generated per token by
/// [`extended_qgram_blocking`]; tokens whose combination count would exceed
/// it fall back to plain q-gram keys.
pub const MAX_COMBINATIONS: usize = 64;

/// Extended q-grams blocking: for each token with `k` q-grams, keys are all
/// sorted concatenations of `l = max(1, ⌊k·threshold⌋)` of them, so two
/// descriptions must share at least `l` q-grams of a token to co-occur.
///
/// `threshold ∈ (0, 1]`; `threshold == 1` degenerates to whole-token keys.
///
/// # Panics
/// Panics if `q == 0` or `threshold` is outside `(0, 1]`.
pub fn extended_qgram_blocking(
    dataset: &Dataset,
    mode: ErMode,
    q: usize,
    threshold: f64,
) -> BlockCollection {
    assert!(q > 0, "q must be positive");
    assert!(
        threshold > 0.0 && threshold <= 1.0,
        "threshold must be in (0, 1]"
    );
    let mut groups: FxHashMap<String, Vec<EntityId>> = FxHashMap::default();
    for e in dataset.entities() {
        let mut keys: FxHashSet<String> = FxHashSet::default();
        for token in dataset.blocking_tokens(e) {
            let mut grams = qgrams(&token, q);
            grams.sort_unstable();
            grams.dedup();
            let k = grams.len();
            let l = ((k as f64 * threshold).floor() as usize).max(1);
            if combination_count(k, l) > MAX_COMBINATIONS {
                // Exponential blow-up guard: plain q-grams for this token.
                for g in grams {
                    keys.insert(g);
                }
                continue;
            }
            for combo in combinations(&grams, l) {
                keys.insert(combo.join("~"));
            }
        }
        let mut keys: Vec<String> = keys.into_iter().collect();
        keys.sort_unstable();
        for kstr in keys {
            groups.entry(kstr).or_default().push(e);
        }
    }
    BlockCollection::from_groups(dataset, mode, groups)
}

/// `C(n, k)` saturating at `usize::MAX`.
fn combination_count(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: usize = 1;
    for i in 0..k {
        acc = match acc.checked_mul(n - i) {
            Some(v) => v / (i + 1),
            None => return usize::MAX,
        };
    }
    acc
}

/// All size-`k` combinations of `items`, in lexicographic index order.
fn combinations(items: &[String], k: usize) -> Vec<Vec<&str>> {
    let mut out = Vec::new();
    if k == 0 || k > items.len() {
        return out;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        out.push(idx.iter().map(|&i| items[i].as_str()).collect());
        // Advance the combination indices.
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + items.len() - k {
                break;
            }
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minoan_rdf::DatasetBuilder;

    fn dataset() -> Dataset {
        let mut b = DatasetBuilder::new();
        let k0 = b.add_kb("a", "http://a/");
        let k1 = b.add_kb("b", "http://b/");
        // Same city, one-character variation: token blocking misses it.
        b.add_literal(k0, "http://a/0", "http://p/label", "heraklion");
        b.add_literal(k1, "http://b/1", "http://p/label", "heraklio");
        b.add_literal(k0, "http://a/2", "http://p/label", "qqqq");
        b.add_literal(k1, "http://b/3", "http://p/label", "wwww");
        b.build()
    }

    #[test]
    fn qgrams_basic() {
        assert_eq!(qgrams("abcd", 3), vec!["abc", "bcd"]);
        assert_eq!(qgrams("ab", 3), vec!["ab"], "short tokens kept whole");
        assert_eq!(qgrams("abc", 3), vec!["abc"]);
    }

    #[test]
    fn qgram_blocking_recovers_typo_pairs() {
        let ds = dataset();
        let blocks = qgram_blocking(&ds, ErMode::CleanClean, 3);
        let pairs = blocks.distinct_pairs();
        assert!(
            pairs.contains(&(EntityId(0), EntityId(1))),
            "heraklion/heraklio share q-grams: {pairs:?}"
        );
        assert!(
            !pairs.contains(&(EntityId(2), EntityId(3))),
            "qqqq and wwww share nothing"
        );
    }

    #[test]
    fn extended_requires_more_shared_evidence() {
        let ds = dataset();
        let plain = qgram_blocking(&ds, ErMode::CleanClean, 3);
        let extended = extended_qgram_blocking(&ds, ErMode::CleanClean, 3, 0.9);
        assert!(
            extended.total_comparisons() <= plain.total_comparisons(),
            "extended ({}) must not exceed plain ({})",
            extended.total_comparisons(),
            plain.total_comparisons()
        );
    }

    #[test]
    fn extended_threshold_one_is_whole_token() {
        let ds = dataset();
        let extended = extended_qgram_blocking(&ds, ErMode::CleanClean, 3, 1.0);
        // l = k → single combination = all q-grams of the token joined;
        // only exactly-equal tokens co-occur, so no pair here.
        assert_eq!(extended.distinct_pairs().len(), 0);
    }

    #[test]
    fn combination_count_matches_pascal() {
        assert_eq!(combination_count(5, 2), 10);
        assert_eq!(combination_count(6, 3), 20);
        assert_eq!(combination_count(3, 5), 0);
        assert_eq!(combination_count(4, 0), 1);
    }

    #[test]
    fn combinations_enumerate_lexicographically() {
        let items: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        let combos = combinations(&items, 2);
        assert_eq!(combos, vec![vec!["a", "b"], vec!["a", "c"], vec!["b", "c"]]);
        assert!(combinations(&items, 0).is_empty());
        assert!(combinations(&items, 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "q must be positive")]
    fn zero_q_rejected() {
        qgram_blocking(&dataset(), ErMode::Dirty, 0);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn bad_threshold_rejected() {
        extended_qgram_blocking(&dataset(), ErMode::Dirty, 3, 1.5);
    }
}
