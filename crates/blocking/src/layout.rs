//! Flat CSR layout primitives for the block collection.
//!
//! The collection stores both of its views — `block → members` and
//! `entity → blocks` — as offset/slab pairs. Each view is the *transpose*
//! of the other, and every construction path (the string-free builder,
//! the `from_groups` compat shim, purging, filtering) reduces to the same
//! operation: given items grouped by row, regroup them by column while
//! preserving row order inside each column. That is a counting sort
//! (count → prefix-sum → fill), implemented here once.
//!
//! The parallel variant follows the PR-1 graph-build discipline: work is
//! partitioned over contiguous *row* ranges with `std::thread::scope`,
//! every output position is precomputed from per-thread counts, and the
//! final gather writes disjoint column-range chunks — so the result is
//! **bit-identical for every thread count**, including 1.

/// Exclusive prefix sum with a trailing total — the CSR offsets of
/// per-group `counts`.
pub(crate) fn prefix_sum(counts: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(counts.len() + 1);
    let mut acc = 0u32;
    out.push(0);
    for &c in counts {
        acc = acc.checked_add(c).expect("CSR slab exceeds u32::MAX items");
        out.push(acc);
    }
    out
}

/// Minimum items a range must be worth before another worker (with its
/// dense per-thread count slab) pays off — small inputs collapse to one
/// range and run serially instead of zeroing `threads × num_cols` counts.
const MIN_RANGE_ITEMS: u64 = 1024;

/// Splits `0..num_rows` into at most `parts` contiguous ranges of roughly
/// equal item count (`row_ends[r]` = cumulative items through row `r`),
/// capped so every range is worth at least [`MIN_RANGE_ITEMS`] items.
/// Never returns an empty range.
pub(crate) fn split_rows(row_ends: &[u32], parts: usize) -> Vec<std::ops::Range<usize>> {
    let n = row_ends.len();
    if n == 0 {
        return Vec::new();
    }
    let items = *row_ends.last().expect("non-empty") as u64;
    let max_parts = (items / MIN_RANGE_ITEMS).max(1) as usize;
    let parts = parts.max(1).min(n).min(max_parts);
    let target = items / parts as u64 + 1;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    let mut acc = 0u64;
    let mut prev_end = 0u64;
    for (r, &end) in row_ends.iter().enumerate() {
        acc += end as u64 - prev_end;
        prev_end = end as u64;
        if acc >= target && out.len() + 1 < parts {
            out.push(start..r + 1);
            start = r + 1;
            acc = 0;
        }
    }
    if start < n {
        out.push(start..n);
    }
    out
}

/// Column key of a transpose item — bare `u32` ids or dense newtypes
/// over them (so the entity slab transposes without a conversion copy).
pub(crate) trait ColId: Copy + Send + Sync {
    fn col_index(self) -> usize;
}

impl ColId for u32 {
    #[inline]
    fn col_index(self) -> usize {
        self as usize
    }
}

impl ColId for minoan_rdf::EntityId {
    #[inline]
    fn col_index(self) -> usize {
        self.index()
    }
}

impl ColId for minoan_common::Symbol {
    #[inline]
    fn col_index(self) -> usize {
        self.index()
    }
}

/// Transposes a row-grouped item list into a column-grouped one.
///
/// Item `i` belongs to column `cols[i]`; the items of row `r` occupy
/// `row_ends[r-1]..row_ends[r]` (with `row_ends[-1] = 0`). Returns
/// `(col_offsets, row_of)`: column `c`'s items occupy
/// `col_offsets[c]..col_offsets[c + 1]` of `row_of`, and each slot holds
/// the *row* its item came from, rows ascending within the column (scan
/// order). Output is identical for every `threads` value.
pub(crate) fn transpose_csr<C: ColId>(
    row_ends: &[u32],
    cols: &[C],
    num_cols: usize,
    threads: usize,
) -> (Vec<u32>, Vec<u32>) {
    debug_assert_eq!(
        row_ends.last().copied().unwrap_or(0) as usize,
        cols.len(),
        "row_ends must cover all items"
    );
    let ranges = split_rows(row_ends, threads);
    if ranges.len() <= 1 {
        return transpose_serial(row_ends, cols, num_cols);
    }

    // Pass 1 — per-thread column counts over disjoint row ranges.
    let per_thread = count_cols_per_range(row_ends, cols, num_cols, &ranges);
    let col_offsets = prefix_sum(&merge_counts(&per_thread, num_cols));

    // Pass 2 — each thread counting-sorts its own items locally (row scan
    // order preserved inside every local column run).
    let mut locals: Vec<(Vec<u32>, Vec<u32>)> = Vec::with_capacity(ranges.len());
    for counts in &per_thread {
        let offs = prefix_sum(counts);
        let len = *offs.last().expect("prefix_sum output is never empty") as usize;
        locals.push((offs, vec![0u32; len]));
    }
    std::thread::scope(|s| {
        for (r, (local_offs, local)) in ranges.iter().zip(locals.iter_mut()) {
            let row_ends = &row_ends;
            let cols = &cols;
            let r = r.clone();
            s.spawn(move || {
                let mut cursor: Vec<u32> = local_offs[..num_cols].to_vec();
                for row in r {
                    let start = if row == 0 { 0 } else { row_ends[row - 1] } as usize;
                    let end = row_ends[row] as usize;
                    for &c in &cols[start..end] {
                        let slot = &mut cursor[c.col_index()];
                        local[*slot as usize] = row as u32;
                        *slot += 1;
                    }
                }
            });
        }
    });

    // Pass 3 — gather: each output column is the concatenation of the
    // thread-local runs in thread (= row) order. Threads own disjoint
    // contiguous *column* ranges of the final slab, so the writes split
    // safely and land at precomputed offsets.
    let mut row_of = vec![0u32; cols.len()];
    let col_ranges = split_rows(&col_offsets[1..], threads);
    let mut chunks: Vec<&mut [u32]> = Vec::with_capacity(col_ranges.len());
    {
        let mut rest: &mut [u32] = &mut row_of;
        let mut prev = 0usize;
        for cr in &col_ranges {
            let end = col_offsets[cr.end] as usize;
            let (chunk, tail) = rest.split_at_mut(end - prev);
            chunks.push(chunk);
            rest = tail;
            prev = end;
        }
        debug_assert!(rest.is_empty());
    }
    std::thread::scope(|s| {
        for (cr, chunk) in col_ranges.iter().zip(chunks) {
            let locals = &locals;
            let cr = cr.clone();
            s.spawn(move || {
                let mut out = 0usize;
                for c in cr {
                    for (local_offs, local) in locals {
                        let lo = local_offs[c] as usize;
                        let hi = local_offs[c + 1] as usize;
                        chunk[out..out + (hi - lo)].copy_from_slice(&local[lo..hi]);
                        out += hi - lo;
                    }
                }
            });
        }
    });
    (col_offsets, row_of)
}

/// Pass 1 of the counting sort, shared with the collection's symbol
/// counting: one dense per-column count vector per (disjoint) row range,
/// filled concurrently. Single-range inputs are counted inline without
/// spawning. The per-range vectors merge additively, so every consumer
/// is thread-count independent by construction.
pub(crate) fn count_cols_per_range<C: ColId>(
    row_ends: &[u32],
    cols: &[C],
    num_cols: usize,
    ranges: &[std::ops::Range<usize>],
) -> Vec<Vec<u32>> {
    let mut per_range: Vec<Vec<u32>> = ranges.iter().map(|_| vec![0u32; num_cols]).collect();
    if ranges.len() <= 1 {
        if let Some(counts) = per_range.first_mut() {
            for &c in cols {
                counts[c.col_index()] += 1;
            }
        }
        return per_range;
    }
    std::thread::scope(|s| {
        for (r, counts) in ranges.iter().zip(per_range.iter_mut()) {
            let items = row_items(row_ends, r);
            let cols = &cols[items];
            s.spawn(move || {
                for &c in cols {
                    counts[c.col_index()] += 1;
                }
            });
        }
    });
    per_range
}

/// Additive merge of per-range count vectors.
pub(crate) fn merge_counts(per_range: &[Vec<u32>], num_cols: usize) -> Vec<u32> {
    let mut totals = vec![0u32; num_cols];
    for counts in per_range {
        for (t, &c) in totals.iter_mut().zip(counts.iter()) {
            *t += c;
        }
    }
    totals
}

/// Merges the sorted run `add` into the sorted vector `dst` in one
/// backward pass over the reserved tail — the delta-append primitive of
/// the incremental collection ([`crate::delta`]): a block's member list
/// grows by a batch without being rebuilt, in `O(len + add)` with a
/// single reserve. `add` must itself be sorted; duplicates between the
/// two runs are kept (the incremental path never produces any — an
/// entity arrives exactly once).
pub(crate) fn merge_sorted_into<T: Ord + Copy>(dst: &mut Vec<T>, add: &[T]) {
    merge_sorted_by_into(dst, add, T::cmp);
}

/// [`merge_sorted_into`] under an explicit total order — used by the
/// incremental collection to merge newly-present blocks into the
/// key-string block order, where the sort key (the resolved string) is
/// not the element itself.
pub(crate) fn merge_sorted_by_into<T: Copy>(
    dst: &mut Vec<T>,
    add: &[T],
    cmp: impl Fn(&T, &T) -> std::cmp::Ordering,
) {
    if add.is_empty() {
        return;
    }
    let old = dst.len();
    dst.extend_from_slice(add);
    // Pure append (everything new sorts after everything old): the
    // extend already produced the merged order.
    if old == 0 || cmp(&dst[old - 1], &add[0]) != std::cmp::Ordering::Greater {
        return;
    }
    // Backward merge: read the old run in place, the added run from the
    // caller's slice, write from the tail. Every slot is written at most
    // once and never before it is read.
    let mut i = old;
    let mut j = add.len();
    let mut k = dst.len();
    while i > 0 && j > 0 {
        if cmp(&dst[i - 1], &add[j - 1]) == std::cmp::Ordering::Greater {
            dst[k - 1] = dst[i - 1];
            i -= 1;
        } else {
            dst[k - 1] = add[j - 1];
            j -= 1;
        }
        k -= 1;
    }
    if j > 0 {
        dst[k - j..k].copy_from_slice(&add[..j]);
    }
}

/// Byte range of the items belonging to the row range `r`.
fn row_items(row_ends: &[u32], r: &std::ops::Range<usize>) -> std::ops::Range<usize> {
    let start = if r.start == 0 {
        0
    } else {
        row_ends[r.start - 1]
    } as usize;
    start..row_ends[r.end - 1] as usize
}

fn transpose_serial<C: ColId>(
    row_ends: &[u32],
    cols: &[C],
    num_cols: usize,
) -> (Vec<u32>, Vec<u32>) {
    let mut counts = vec![0u32; num_cols];
    for &c in cols {
        counts[c.col_index()] += 1;
    }
    let col_offsets = prefix_sum(&counts);
    let mut cursor: Vec<u32> = col_offsets[..num_cols].to_vec();
    let mut row_of = vec![0u32; cols.len()];
    let mut start = 0usize;
    for (row, &end) in row_ends.iter().enumerate() {
        for &c in &cols[start..end as usize] {
            let slot = &mut cursor[c.col_index()];
            row_of[*slot as usize] = row as u32;
            *slot += 1;
        }
        start = end as usize;
    }
    (col_offsets, row_of)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(row_ends: &[u32], cols: &[u32], num_cols: usize) -> (Vec<u32>, Vec<u32>) {
        let mut grouped: Vec<Vec<u32>> = vec![Vec::new(); num_cols];
        let mut start = 0usize;
        for (row, &end) in row_ends.iter().enumerate() {
            for &c in &cols[start..end as usize] {
                grouped[c.col_index()].push(row as u32);
            }
            start = end as usize;
        }
        let counts: Vec<u32> = grouped.iter().map(|g| g.len() as u32).collect();
        (prefix_sum(&counts), grouped.concat())
    }

    #[test]
    fn transpose_matches_naive_for_every_thread_count() {
        // Pseudo-random rows with a skewed column distribution — enough
        // items (≫ MIN_RANGE_ITEMS) that the parallel path really splits.
        let num_cols = 13;
        let mut cols = Vec::new();
        let mut row_ends = Vec::new();
        let mut x = 7u32;
        for row in 0..4000u32 {
            for _ in 0..(row % 5) {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                cols.push((x >> 9) % num_cols as u32);
            }
            row_ends.push(cols.len() as u32);
        }
        assert!(cols.len() as u64 > 4 * MIN_RANGE_ITEMS);
        let expect = naive(&row_ends, &cols, num_cols);
        for threads in [1, 2, 3, 4, 8, 64] {
            let got = transpose_csr(&row_ends, &cols, num_cols, threads);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn transpose_handles_empty() {
        assert_eq!(transpose_csr::<u32>(&[], &[], 0, 4), (vec![0], vec![]));
        // Rows exist but hold no items; columns exist but receive none.
        let (offs, rows) = transpose_csr::<u32>(&[0, 0, 0], &[], 5, 4);
        assert_eq!(offs, vec![0; 6]);
        assert!(rows.is_empty());
    }

    #[test]
    fn split_rows_covers_in_order() {
        // Item counts well above MIN_RANGE_ITEMS so the cap does not
        // collapse the split.
        let row_ends = vec![2000u32, 2000, 10000, 11000, 14000];
        for parts in 1..7 {
            let ranges = split_rows(&row_ends, parts);
            assert!(ranges.len() <= parts);
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next);
                assert!(r.end > r.start);
                next = r.end;
            }
            assert_eq!(next, row_ends.len());
        }
        assert!(split_rows(&row_ends, 5).len() > 1, "large input must split");
    }

    #[test]
    fn merge_sorted_into_matches_sort() {
        let cases: &[(&[u32], &[u32])] = &[
            (&[], &[]),
            (&[1, 3, 5], &[]),
            (&[], &[2, 4]),
            (&[1, 2, 3], &[4, 5, 6]),  // pure append fast path
            (&[4, 5, 6], &[1, 2, 3]),  // full prepend
            (&[1, 4, 9], &[2, 3, 10]), // interleave
            (&[2, 2, 5], &[2, 5, 5]),  // duplicates kept
            (&[7], &[0, 1, 2, 3, 4, 5]),
        ];
        for (dst0, add) in cases {
            let mut dst = dst0.to_vec();
            merge_sorted_into(&mut dst, add);
            let mut expect = dst0.to_vec();
            expect.extend_from_slice(add);
            expect.sort_unstable();
            assert_eq!(dst, expect, "dst={dst0:?} add={add:?}");
        }
    }

    #[test]
    fn merge_sorted_by_into_uses_the_comparator() {
        // Descending order via a flipped comparator.
        let mut dst = vec![9u32, 5, 1];
        merge_sorted_by_into(&mut dst, &[8, 4, 0], |a, b| b.cmp(a));
        assert_eq!(dst, vec![9, 8, 5, 4, 1, 0]);
    }

    #[test]
    fn split_rows_collapses_tiny_inputs() {
        // Fewer items than MIN_RANGE_ITEMS → one range regardless of the
        // requested part count (no per-thread count slabs for tiny work).
        let row_ends = vec![2u32, 2, 10, 11, 14];
        for parts in 1..7 {
            assert_eq!(split_rows(&row_ends, parts).len(), 1);
        }
    }
}
