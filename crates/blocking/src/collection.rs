//! The block collection data structure.

use minoan_common::{FxHashMap, FxHashSet, Interner, Symbol};
use minoan_rdf::{Dataset, EntityId};
use std::fmt;

/// Whether comparisons happen within one dirty source or only across clean
/// sources.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ErMode {
    /// Dirty ER: any pair of distinct descriptions in a block is a
    /// comparison.
    Dirty,
    /// Clean–clean (cross-KB) ER: only pairs from *different* KBs are
    /// comparisons (each KB is internally duplicate-free).
    CleanClean,
}

/// Dense id of a block within a [`BlockCollection`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// One block: a key and the entities that share it.
#[derive(Clone, Debug)]
pub struct Block {
    /// Interned block key (token, infix token, or cluster-qualified token).
    pub key: Symbol,
    /// Member entities, sorted ascending.
    pub entities: Box<[EntityId]>,
    /// Number of comparisons this block induces under the collection's
    /// [`ErMode`].
    pub comparisons: u64,
}

impl Block {
    /// Number of member entities.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// Whether the block has no members (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }
}

/// A set of blocks plus the inverted per-entity view.
///
/// Invariants established at construction:
/// * every block induces at least one comparison (singleton and
///   single-KB-in-clean-mode blocks are dropped),
/// * block member lists are sorted,
/// * `entity_blocks(e)` lists, sorted by block id, exactly the blocks
///   containing `e`.
pub struct BlockCollection {
    mode: ErMode,
    blocks: Vec<Block>,
    keys: Interner,
    entity_blocks: Vec<Vec<BlockId>>,
    kb_of: Vec<u16>,
    total_comparisons: u64,
}

impl BlockCollection {
    /// Builds a collection from raw `key → entities` groups.
    ///
    /// `dataset` supplies the KB partition (for clean–clean comparison
    /// counting) and the entity-id universe.
    pub fn from_groups(
        dataset: &Dataset,
        mode: ErMode,
        groups: impl IntoIterator<Item = (String, Vec<EntityId>)>,
    ) -> Self {
        let kb_of: Vec<u16> = (0..dataset.len() as u32)
            .map(|e| dataset.kb_of(EntityId(e)).0)
            .collect();
        let mut keys = Interner::new();
        let mut blocks: Vec<Block> = Vec::new();
        // Sort groups by key for full determinism independent of map order.
        let mut groups: Vec<(String, Vec<EntityId>)> = groups.into_iter().collect();
        groups.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        for (key, mut entities) in groups {
            entities.sort_unstable();
            entities.dedup();
            let comparisons = block_comparisons(&entities, &kb_of, mode);
            if comparisons == 0 {
                continue;
            }
            let sym = keys.intern(&key);
            blocks.push(Block {
                key: sym,
                entities: entities.into_boxed_slice(),
                comparisons,
            });
        }
        Self::assemble(mode, blocks, keys, kb_of)
    }

    /// Rebuilds a collection from already-formed blocks (used by purging
    /// and filtering). Blocks inducing no comparison are dropped.
    pub(crate) fn rebuild(&self, blocks: Vec<(Symbol, Vec<EntityId>)>) -> Self {
        let mut keys = Interner::new();
        let mut out = Vec::with_capacity(blocks.len());
        for (old_key, mut entities) in blocks {
            entities.sort_unstable();
            entities.dedup();
            let comparisons = block_comparisons(&entities, &self.kb_of, self.mode);
            if comparisons == 0 {
                continue;
            }
            let sym = keys.intern(self.keys.resolve(old_key));
            out.push(Block {
                key: sym,
                entities: entities.into_boxed_slice(),
                comparisons,
            });
        }
        Self::assemble(self.mode, out, keys, self.kb_of.clone())
    }

    fn assemble(mode: ErMode, blocks: Vec<Block>, keys: Interner, kb_of: Vec<u16>) -> Self {
        let mut entity_blocks: Vec<Vec<BlockId>> = vec![Vec::new(); kb_of.len()];
        let mut total = 0u64;
        for (i, b) in blocks.iter().enumerate() {
            total += b.comparisons;
            for &e in b.entities.iter() {
                entity_blocks[e.index()].push(BlockId(i as u32));
            }
        }
        Self {
            mode,
            blocks,
            keys,
            entity_blocks,
            kb_of,
            total_comparisons: total,
        }
    }

    /// ER mode the collection was built under.
    pub fn mode(&self) -> ErMode {
        self.mode
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether there are no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The blocks, in key order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Block by id.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Resolves a block key symbol to its string.
    pub fn key_str(&self, b: BlockId) -> &str {
        self.keys.resolve(self.blocks[b.index()].key)
    }

    /// Blocks containing entity `e`, sorted by block id.
    pub fn entity_blocks(&self, e: EntityId) -> &[BlockId] {
        &self.entity_blocks[e.index()]
    }

    /// Number of entities placed in at least one block.
    pub fn placed_entities(&self) -> usize {
        self.entity_blocks.iter().filter(|b| !b.is_empty()).count()
    }

    /// Σ over blocks of their member count (the "block assignments" BC).
    pub fn total_assignments(&self) -> u64 {
        self.blocks.iter().map(|b| b.len() as u64).sum()
    }

    /// Σ over blocks of their comparisons (with repetitions across blocks).
    pub fn total_comparisons(&self) -> u64 {
        self.total_comparisons
    }

    /// KB id of entity `e` (cached copy of the dataset's partition).
    pub fn kb_of(&self, e: EntityId) -> u16 {
        self.kb_of[e.index()]
    }

    /// Number of entities in the underlying dataset.
    pub fn num_entities(&self) -> usize {
        self.kb_of.len()
    }

    /// Whether `a, b` is a valid comparison under the ER mode.
    #[inline]
    pub fn comparable(&self, a: EntityId, b: EntityId) -> bool {
        a != b && (self.mode == ErMode::Dirty || self.kb_of[a.index()] != self.kb_of[b.index()])
    }

    /// All *distinct* comparable pairs across blocks, normalised `(a < b)`.
    ///
    /// This materialises the deduplicated comparison set — use only at
    /// experiment scale (it is exactly what meta-blocking exists to avoid).
    pub fn distinct_pairs(&self) -> Vec<(EntityId, EntityId)> {
        let mut set: FxHashSet<(EntityId, EntityId)> = FxHashSet::default();
        for b in &self.blocks {
            for (i, &x) in b.entities.iter().enumerate() {
                for &y in &b.entities[i + 1..] {
                    if self.comparable(x, y) {
                        set.insert((x.min(y), x.max(y)));
                    }
                }
            }
        }
        let mut v: Vec<_> = set.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Iterates `(block, pair)` occurrences *with* repetitions — the raw
    /// comparison stream meta-blocking analyses.
    pub fn pair_occurrences(&self) -> impl Iterator<Item = (BlockId, EntityId, EntityId)> + '_ {
        self.blocks.iter().enumerate().flat_map(move |(bi, b)| {
            let id = BlockId(bi as u32);
            b.entities.iter().enumerate().flat_map(move |(i, &x)| {
                b.entities[i + 1..]
                    .iter()
                    .filter(move |&&y| self.comparable(x, y))
                    .map(move |&y| (id, x.min(y), x.max(y)))
            })
        })
    }

    /// Iterates the comparable co-occurrences of a single entity: one
    /// `(block, 1/‖block‖, other)` item per appearance of a comparable
    /// co-member in a block containing `a`, in ascending block-id order.
    ///
    /// This is the node-centric dual of [`Self::pair_occurrences`]: summing
    /// the items per `other` yields exactly the CBS/ARCS statistics of the
    /// blocking-graph edges incident to `a`. Meta-blocking's streaming
    /// path sweeps this per entity instead of materialising the edge set.
    pub fn co_occurrences(
        &self,
        a: EntityId,
    ) -> impl Iterator<Item = (BlockId, f64, EntityId)> + '_ {
        self.entity_blocks(a).iter().flat_map(move |&bid| {
            let b = self.block(bid);
            let inv_card = 1.0 / (b.comparisons as f64).max(1.0);
            b.entities
                .iter()
                .copied()
                .filter(move |&y| self.comparable(a, y))
                .map(move |y| (bid, inv_card, y))
        })
    }

    /// Distribution summary: (min, median, max) block sizes.
    pub fn size_summary(&self) -> (usize, usize, usize) {
        if self.blocks.is_empty() {
            return (0, 0, 0);
        }
        let mut sizes: Vec<usize> = self.blocks.iter().map(|b| b.len()).collect();
        sizes.sort_unstable();
        (sizes[0], sizes[sizes.len() / 2], sizes[sizes.len() - 1])
    }
}

impl fmt::Debug for BlockCollection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BlockCollection")
            .field("mode", &self.mode)
            .field("blocks", &self.blocks.len())
            .field("comparisons", &self.total_comparisons)
            .finish()
    }
}

/// Comparisons a member list induces: all pairs (dirty) or cross-KB pairs
/// only (clean–clean: C(n,2) − Σ_kb C(n_kb,2)).
pub(crate) fn block_comparisons(entities: &[EntityId], kb_of: &[u16], mode: ErMode) -> u64 {
    let n = entities.len() as u64;
    let all = n * n.saturating_sub(1) / 2;
    match mode {
        ErMode::Dirty => all,
        ErMode::CleanClean => {
            let mut per_kb: FxHashMap<u16, u64> = FxHashMap::default();
            for &e in entities {
                *per_kb.entry(kb_of[e.index()]).or_insert(0) += 1;
            }
            let intra: u64 = per_kb.values().map(|&c| c * c.saturating_sub(1) / 2).sum();
            all - intra
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minoan_rdf::DatasetBuilder;

    /// Two KBs with 3 + 2 entities.
    fn dataset() -> Dataset {
        let mut b = DatasetBuilder::new();
        let k0 = b.add_kb("a", "http://a/");
        let k1 = b.add_kb("b", "http://b/");
        for (kb, uri) in [
            (k0, "http://a/0"),
            (k0, "http://a/1"),
            (k0, "http://a/2"),
            (k1, "http://b/3"),
            (k1, "http://b/4"),
        ] {
            b.add_literal(kb, uri, "http://p/label", "x");
        }
        b.build()
    }

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    #[test]
    fn clean_clean_counts_cross_kb_only() {
        let ds = dataset();
        let groups = vec![("t".to_string(), vec![e(0), e(1), e(3)])];
        let c = BlockCollection::from_groups(&ds, ErMode::CleanClean, groups);
        assert_eq!(c.len(), 1);
        // Pairs: (0,1) intra, (0,3), (1,3) cross → 2 comparisons.
        assert_eq!(c.total_comparisons(), 2);
    }

    #[test]
    fn dirty_counts_all_pairs() {
        let ds = dataset();
        let groups = vec![("t".to_string(), vec![e(0), e(1), e(3)])];
        let c = BlockCollection::from_groups(&ds, ErMode::Dirty, groups);
        assert_eq!(c.total_comparisons(), 3);
    }

    #[test]
    fn useless_blocks_are_dropped() {
        let ds = dataset();
        let groups = vec![
            ("single".to_string(), vec![e(0)]),
            ("intra_only".to_string(), vec![e(0), e(1)]),
            ("good".to_string(), vec![e(0), e(3)]),
        ];
        let c = BlockCollection::from_groups(&ds, ErMode::CleanClean, groups);
        assert_eq!(c.len(), 1);
        assert_eq!(c.key_str(BlockId(0)), "good");
        // In dirty mode the intra pair survives.
        let groups = vec![
            ("single".to_string(), vec![e(0)]),
            ("intra_only".to_string(), vec![e(0), e(1)]),
        ];
        let c = BlockCollection::from_groups(&ds, ErMode::Dirty, groups);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn entity_blocks_inverse_view() {
        let ds = dataset();
        let groups = vec![
            ("k1".to_string(), vec![e(0), e(3)]),
            ("k2".to_string(), vec![e(0), e(4)]),
            ("k3".to_string(), vec![e(1), e(3)]),
        ];
        let c = BlockCollection::from_groups(&ds, ErMode::CleanClean, groups);
        assert_eq!(c.entity_blocks(e(0)).len(), 2);
        assert_eq!(c.entity_blocks(e(1)).len(), 1);
        assert_eq!(c.entity_blocks(e(2)).len(), 0);
        assert_eq!(c.placed_entities(), 4);
        assert_eq!(c.total_assignments(), 6);
    }

    #[test]
    fn duplicate_members_are_deduped() {
        let ds = dataset();
        let groups = vec![("t".to_string(), vec![e(0), e(0), e(3), e(3)])];
        let c = BlockCollection::from_groups(&ds, ErMode::CleanClean, groups);
        assert_eq!(c.block(BlockId(0)).len(), 2);
        assert_eq!(c.total_comparisons(), 1);
    }

    #[test]
    fn distinct_pairs_dedup_across_blocks() {
        let ds = dataset();
        let groups = vec![
            ("k1".to_string(), vec![e(0), e(3)]),
            ("k2".to_string(), vec![e(0), e(3), e(4)]),
        ];
        let c = BlockCollection::from_groups(&ds, ErMode::CleanClean, groups);
        // Occurrences: (0,3) twice, (0,4), (3,4) intra-b? 3 and 4 same KB → no.
        assert_eq!(c.total_comparisons(), 3);
        let pairs = c.distinct_pairs();
        assert_eq!(pairs, vec![(e(0), e(3)), (e(0), e(4))]);
        assert_eq!(c.pair_occurrences().count(), 3);
    }

    #[test]
    fn groups_are_sorted_by_key() {
        let ds = dataset();
        let groups = vec![
            ("zz".to_string(), vec![e(0), e(3)]),
            ("aa".to_string(), vec![e(1), e(4)]),
        ];
        let c = BlockCollection::from_groups(&ds, ErMode::CleanClean, groups);
        assert_eq!(c.key_str(BlockId(0)), "aa");
        assert_eq!(c.key_str(BlockId(1)), "zz");
    }

    #[test]
    fn size_summary_handles_empty() {
        let ds = dataset();
        let c = BlockCollection::from_groups(
            &ds,
            ErMode::CleanClean,
            Vec::<(String, Vec<EntityId>)>::new(),
        );
        assert_eq!(c.size_summary(), (0, 0, 0));
        assert!(c.is_empty());
    }
}
