//! The block collection data structure, stored in flat CSR slabs.
//!
//! Earlier revisions kept one heap allocation per block
//! (`Box<[EntityId]>` member lists behind a `Vec<Block>`) plus a
//! `Vec<Vec<BlockId>>` inverted index, and every purge/filter pass
//! rebuilt all of it through string re-interning and fresh `Vec`s. The
//! current layout mirrors the CSR blocking graph (`metablocking::graph`):
//!
//! * `block_offsets` / `block_entities` — block `b`'s members occupy
//!   `block_offsets[b] .. block_offsets[b + 1]`, sorted ascending;
//! * `entity_offsets` / `entity_block_ids` — entity `e`'s blocks occupy
//!   `entity_offsets[e] .. entity_offsets[e + 1]`, ascending by id;
//! * per-block `comparisons` (‖b‖) and the precomputed ARCS reciprocal
//!   `inv_cardinality` (`1/‖b‖`) that the meta-blocking sweeps read
//!   directly instead of re-dividing per block visit.
//!
//! Construction is a two-pass counting sort (the crate-internal `layout`
//! module), thread-parallel over entity ranges and bit-identical for
//! every thread count. Block keys are interned [`Symbol`]s; successors produced by
//! purging/filtering share the interner (`Arc`) and remap ids instead of
//! rebuilding — see [`crate::purge`] and [`crate::filter`].

use crate::layout::{count_cols_per_range, merge_counts, split_rows, transpose_csr};
use minoan_common::{FxHashSet, Interner, Symbol};
use minoan_rdf::{Dataset, EntityId};
use std::fmt;
use std::sync::Arc;

/// Whether comparisons happen within one dirty source or only across clean
/// sources.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ErMode {
    /// Dirty ER: any pair of distinct descriptions in a block is a
    /// comparison.
    Dirty,
    /// Clean–clean (cross-KB) ER: only pairs from *different* KBs are
    /// comparisons (each KB is internally duplicate-free).
    CleanClean,
}

/// Dense id of a block within a [`BlockCollection`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A borrowed view of one block: key, member slice and comparison count.
///
/// Returned by value from [`BlockCollection::block`]; the member slice
/// points straight into the collection's entity slab.
#[derive(Clone, Copy, Debug)]
pub struct BlockRef<'a> {
    /// Dense id of the block.
    pub id: BlockId,
    /// Interned block key (token, infix token, or cluster-qualified token).
    pub key: Symbol,
    /// Member entities, sorted ascending.
    pub entities: &'a [EntityId],
    /// Number of comparisons this block induces under the collection's
    /// [`ErMode`].
    pub comparisons: u64,
}

impl BlockRef<'_> {
    /// Number of member entities.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// Whether the block has no members (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }
}

/// Per-entity interned blocking keys — the string-free input of
/// [`BlockCollection::from_assignments`].
///
/// Builders visit entities in ascending id order, push one interned
/// [`Symbol`] per raw token (interning happens *during* tokenisation, so
/// no `String` per token occurrence is ever accumulated), and call
/// [`Self::seal_entity`] once per entity; sealing sorts and dedups the
/// entity's run in place.
#[derive(Default)]
pub struct KeyAssignments {
    keys: Interner,
    syms: Vec<Symbol>,
    /// `ends[e]` = end of entity `e`'s (sealed) run in `syms`.
    ends: Vec<u32>,
}

impl KeyAssignments {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-sizes the per-entity run table for `entities` entities.
    pub fn with_capacity(entities: usize) -> Self {
        Self {
            keys: Interner::new(),
            syms: Vec::new(),
            ends: Vec::with_capacity(entities),
        }
    }

    /// An accumulator seeded with an existing interner — the incremental
    /// path ([`crate::delta`]) tokenises every batch through the same
    /// persistent symbol space, so a key's [`Symbol`] is stable across
    /// ingests and the per-key member lists can be delta-appended.
    pub(crate) fn with_keys(keys: Interner) -> Self {
        Self {
            keys,
            syms: Vec::new(),
            ends: Vec::new(),
        }
    }

    /// Decomposes into `(interner, symbol slab, per-entity run ends)` —
    /// the incremental path takes the sealed batch runs back out to merge
    /// them into its per-symbol slabs.
    pub(crate) fn into_parts(self) -> (Interner, Vec<Symbol>, Vec<u32>) {
        (self.keys, self.syms, self.ends)
    }

    /// Interns `key` and assigns it to the current entity.
    #[inline]
    pub fn push_key(&mut self, key: &str) {
        let sym = self.keys.intern(key);
        self.syms.push(sym);
    }

    /// Interns `{prefix}{key}` (namespaced key space, no `format!`
    /// allocation) and assigns it to the current entity.
    #[inline]
    pub fn push_key_prefixed(&mut self, prefix: &str, key: &str) {
        let sym = self.keys.intern_prefixed(prefix, key);
        self.syms.push(sym);
    }

    /// Seals the current entity: sorts and dedups its run. Must be called
    /// exactly once per entity, in ascending entity-id order.
    pub fn seal_entity(&mut self) {
        let start = self.ends.last().copied().unwrap_or(0) as usize;
        self.syms[start..].sort_unstable();
        let mut w = start;
        for r in start..self.syms.len() {
            if w == start || self.syms[r] != self.syms[w - 1] {
                self.syms[w] = self.syms[r];
                w += 1;
            }
        }
        self.syms.truncate(w);
        self.ends
            .push(u32::try_from(self.syms.len()).expect("more than u32::MAX assignments"));
    }

    /// Number of sealed entities so far.
    pub fn num_entities(&self) -> usize {
        self.ends.len()
    }

    /// Number of (deduplicated) key assignments so far.
    pub fn num_assignments(&self) -> usize {
        self.syms.len()
    }
}

/// Reusable per-KB member counters for clean–clean comparison counting.
pub(crate) struct KbScratch {
    counts: Vec<u64>,
    touched: Vec<u16>,
}

impl KbScratch {
    pub(crate) fn new(num_kbs: usize) -> Self {
        Self {
            counts: vec![0; num_kbs],
            touched: Vec::new(),
        }
    }
}

/// Comparisons a sorted member list induces: all pairs (dirty) or cross-KB
/// pairs only (clean–clean: C(n,2) − Σ_kb C(n_kb,2)).
pub(crate) fn count_comparisons(
    entities: &[EntityId],
    kb_of: &[u16],
    mode: ErMode,
    scratch: &mut KbScratch,
) -> u64 {
    let n = entities.len() as u64;
    let all = n * n.saturating_sub(1) / 2;
    match mode {
        ErMode::Dirty => all,
        ErMode::CleanClean => {
            for &e in entities {
                let kb = kb_of[e.index()] as usize;
                if scratch.counts[kb] == 0 {
                    scratch.touched.push(kb as u16);
                }
                scratch.counts[kb] += 1;
            }
            let mut intra = 0u64;
            for &kb in &scratch.touched {
                let c = scratch.counts[kb as usize];
                intra += c * c.saturating_sub(1) / 2;
                scratch.counts[kb as usize] = 0;
            }
            scratch.touched.clear();
            all - intra
        }
    }
}

/// A set of blocks plus the inverted per-entity view, both in flat CSR.
///
/// Invariants established at construction:
/// * every block induces at least one comparison (singleton and
///   single-KB-in-clean-mode blocks are dropped),
/// * block member lists are sorted,
/// * `entity_blocks(e)` lists, sorted by block id, exactly the blocks
///   containing `e`.
pub struct BlockCollection {
    mode: ErMode,
    /// Key interner — shared (`Arc`) with purge/filter successors, which
    /// remap block ids instead of re-interning.
    keys: Arc<Interner>,
    /// Per block: its interned key.
    block_keys: Vec<Symbol>,
    /// CSR offsets into `block_entities` (len = blocks + 1).
    block_offsets: Vec<u32>,
    /// Member slab, sorted ascending within each block.
    block_entities: Vec<EntityId>,
    /// Per block: comparisons ‖b‖ under `mode`.
    comparisons: Vec<u64>,
    /// Per block: `1 / max(‖b‖, 1)` — the ARCS reciprocal, precomputed so
    /// the meta-blocking sweeps never divide per block visit.
    inv_cardinality: Vec<f64>,
    /// CSR offsets into `entity_block_ids` (len = entities + 1).
    entity_offsets: Vec<u32>,
    /// Inverted slab: block ids per entity, ascending.
    entity_block_ids: Vec<BlockId>,
    kb_of: Vec<u16>,
    num_kbs: usize,
    total_comparisons: u64,
}

impl BlockCollection {
    /// Builds a collection from raw `key → entities` groups.
    ///
    /// This is the string-keyed compatibility path (used by the union
    /// combinator and the window/cluster blockers whose keys are composed
    /// strings); the token builders go through the string-free
    /// [`Self::from_assignments`] instead. Both produce identical
    /// collections for the same logical groups.
    ///
    /// `dataset` supplies the KB partition (for clean–clean comparison
    /// counting) and the entity-id universe.
    pub fn from_groups(
        dataset: &Dataset,
        mode: ErMode,
        groups: impl IntoIterator<Item = (String, Vec<EntityId>)>,
    ) -> Self {
        let kb_of: Vec<u16> = (0..dataset.len() as u32)
            .map(|e| dataset.kb_of(EntityId(e)).0)
            .collect();
        let num_kbs = dataset.kbs().len();
        let mut keys = Interner::new();
        // Sort groups by key for full determinism independent of map order.
        let mut groups: Vec<(String, Vec<EntityId>)> = groups.into_iter().collect();
        groups.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let mut scratch = KbScratch::new(num_kbs);
        let mut block_keys = Vec::with_capacity(groups.len());
        let mut block_offsets = vec![0u32];
        let mut block_entities: Vec<EntityId> = Vec::new();
        let mut comparisons = Vec::with_capacity(groups.len());
        for (key, mut entities) in groups {
            entities.sort_unstable();
            entities.dedup();
            let c = count_comparisons(&entities, &kb_of, mode, &mut scratch);
            if c == 0 {
                continue;
            }
            block_keys.push(keys.intern(&key));
            block_entities.extend_from_slice(&entities);
            block_offsets.push(slab_len(&block_entities));
            comparisons.push(c);
        }
        Self::finish(
            mode,
            Arc::new(keys),
            block_keys,
            block_offsets,
            block_entities,
            comparisons,
            kb_of,
            num_kbs,
            1,
        )
    }

    /// Builds a collection from per-entity interned key assignments using
    /// all available cores.
    pub fn from_assignments(dataset: &Dataset, mode: ErMode, assignments: KeyAssignments) -> Self {
        Self::from_assignments_with_threads(
            dataset,
            mode,
            assignments,
            minoan_common::default_threads(),
        )
    }

    /// As [`Self::from_assignments`] with an explicit worker count. The
    /// result is identical for every `threads` value (including 1): the
    /// grouping is a two-pass counting sort over entity ranges in which
    /// every slab position is precomputed from per-thread counts.
    pub fn from_assignments_with_threads(
        dataset: &Dataset,
        mode: ErMode,
        assignments: KeyAssignments,
        threads: usize,
    ) -> Self {
        let KeyAssignments { keys, syms, ends } = assignments;
        let n = dataset.len();
        assert_eq!(
            ends.len(),
            n,
            "assignments must seal every entity exactly once"
        );
        let kb_of: Vec<u16> = (0..n as u32)
            .map(|e| dataset.kb_of(EntityId(e)).0)
            .collect();
        let num_kbs = dataset.kbs().len();
        let k = keys.len();
        let threads = threads.max(1);

        // Pass 1 — occurrence count per symbol (entity-range parallel).
        let counts = count_symbols(&ends, &syms, k, threads);

        // Blocks need ≥ 2 members to induce any comparison; survivors are
        // ordered by key string, exactly like the `from_groups` path.
        let mut order: Vec<u32> = (0..k as u32).filter(|&s| counts[s as usize] >= 2).collect();
        order.sort_unstable_by(|&a, &b| keys.resolve(Symbol(a)).cmp(keys.resolve(Symbol(b))));
        let mut slot_of = vec![u32::MAX; k];
        for (slot, &sym) in order.iter().enumerate() {
            slot_of[sym as usize] = slot as u32;
        }

        // Map assignments to provisional slots, dropping singleton keys.
        let mut cols = Vec::with_capacity(syms.len());
        let mut kept_ends = Vec::with_capacity(n);
        let mut start = 0usize;
        for &end in &ends {
            for &sym in &syms[start..end as usize] {
                let slot = slot_of[sym.index()];
                if slot != u32::MAX {
                    cols.push(slot);
                }
            }
            kept_ends.push(cols.len() as u32);
            start = end as usize;
        }

        // Pass 2 — counting-sort transpose into the provisional block
        // slab (members ascending: rows are scanned in entity order).
        let (prov_offsets, rows) = transpose_csr(&kept_ends, &cols, order.len(), threads);
        let prov_entities: Vec<EntityId> = rows.into_iter().map(EntityId).collect();

        // Comparisons per provisional block; drop blocks inducing none
        // and compact the survivors into the final slabs.
        let prov_comparisons = comparisons_per_block(
            &prov_offsets,
            &prov_entities,
            &kb_of,
            num_kbs,
            mode,
            threads,
        );
        let (block_keys, block_offsets, block_entities, comparisons) =
            compact_blocks(&prov_offsets, &prov_entities, &prov_comparisons, |i| {
                Symbol(order[i])
            });
        Self::finish(
            mode,
            Arc::new(keys),
            block_keys,
            block_offsets,
            block_entities,
            comparisons,
            kb_of,
            num_kbs,
            threads,
        )
    }

    /// Retains exactly the blocks with `keep[b] == true`, remapping ids
    /// and sharing the key interner — no hash maps, no re-interning, no
    /// per-block member copies beyond one slab memcpy. Member lists (and
    /// therefore comparison counts) are unchanged. Used by purging.
    pub(crate) fn retain_blocks(&self, keep: &[bool], threads: usize) -> Self {
        debug_assert_eq!(keep.len(), self.len());
        let kept: Vec<u64> = keep
            .iter()
            .zip(&self.comparisons)
            .map(|(&k, &c)| if k { c } else { 0 })
            .collect();
        let (block_keys, block_offsets, block_entities, comparisons) =
            compact_blocks(&self.block_offsets, &self.block_entities, &kept, |i| {
                self.block_keys[i]
            });
        Self::finish(
            self.mode,
            Arc::clone(&self.keys),
            block_keys,
            block_offsets,
            block_entities,
            comparisons,
            self.kb_of.clone(),
            self.num_kbs,
            threads,
        )
    }

    /// Retains exactly the `(entity, block)` assignments whose slot in
    /// the inverted slab (`entity_block_ids` order) is marked in `keep`,
    /// recounts comparisons, drops blocks left without any, and writes
    /// the successor straight into fresh slabs. Used by filtering.
    pub(crate) fn retain_assignments(&self, keep: &[bool], threads: usize) -> Self {
        debug_assert_eq!(keep.len(), self.entity_block_ids.len());
        let n = self.num_entities();
        let mut cols = Vec::with_capacity(self.entity_block_ids.len());
        let mut kept_ends = Vec::with_capacity(n);
        for e in 0..n {
            let start = self.entity_offsets[e] as usize;
            let end = self.entity_offsets[e + 1] as usize;
            for (&kept, b) in keep[start..end]
                .iter()
                .zip(&self.entity_block_ids[start..end])
            {
                if kept {
                    cols.push(b.0);
                }
            }
            kept_ends.push(cols.len() as u32);
        }
        let (prov_offsets, rows) = transpose_csr(&kept_ends, &cols, self.len(), threads);
        let prov_entities: Vec<EntityId> = rows.into_iter().map(EntityId).collect();
        let prov_comparisons = comparisons_per_block(
            &prov_offsets,
            &prov_entities,
            &self.kb_of,
            self.num_kbs,
            self.mode,
            threads,
        );
        let (block_keys, block_offsets, block_entities, comparisons) =
            compact_blocks(&prov_offsets, &prov_entities, &prov_comparisons, |i| {
                self.block_keys[i]
            });
        Self::finish(
            self.mode,
            Arc::clone(&self.keys),
            block_keys,
            block_offsets,
            block_entities,
            comparisons,
            self.kb_of.clone(),
            self.num_kbs,
            threads,
        )
    }

    /// The pre-flat successor path: re-sorts, re-counts and re-interns
    /// every retained block through fresh owned storage, then rebuilds
    /// the inverted index via per-entity `Vec`s. Kept **only** as the
    /// measured baseline and equivalence oracle for the slab-based
    /// `retain_*` passes (see `purge::legacy_purge_with` /
    /// `filter::legacy_filter_with` and the `blocking_layout` suite).
    #[doc(hidden)]
    pub fn rebuild_from_blocks(&self, blocks: Vec<(Symbol, Vec<EntityId>)>) -> Self {
        let mut keys = Interner::new();
        let mut scratch = KbScratch::new(self.num_kbs);
        let mut block_keys = Vec::with_capacity(blocks.len());
        let mut owned: Vec<Vec<EntityId>> = Vec::with_capacity(blocks.len());
        let mut comparisons = Vec::with_capacity(blocks.len());
        for (old_key, mut entities) in blocks {
            entities.sort_unstable();
            entities.dedup();
            let c = count_comparisons(&entities, &self.kb_of, self.mode, &mut scratch);
            if c == 0 {
                continue;
            }
            block_keys.push(keys.intern(self.keys.resolve(old_key)));
            owned.push(entities);
            comparisons.push(c);
        }
        // Legacy inverted index: one Vec per entity, then flatten.
        let mut entity_blocks: Vec<Vec<BlockId>> = vec![Vec::new(); self.num_entities()];
        for (i, members) in owned.iter().enumerate() {
            for &e in members {
                entity_blocks[e.index()].push(BlockId(i as u32));
            }
        }
        let mut block_offsets = vec![0u32];
        let mut block_entities = Vec::new();
        for members in owned {
            block_entities.extend_from_slice(&members);
            block_offsets.push(slab_len(&block_entities));
        }
        let mut entity_offsets = vec![0u32];
        let mut entity_block_ids = Vec::new();
        for bs in entity_blocks {
            entity_block_ids.extend_from_slice(&bs);
            entity_offsets.push(entity_block_ids.len() as u32);
        }
        let inv_cardinality = comparisons
            .iter()
            .map(|&c| 1.0 / (c as f64).max(1.0))
            .collect();
        let total_comparisons = comparisons.iter().sum();
        Self {
            mode: self.mode,
            keys: Arc::new(keys),
            block_keys,
            block_offsets,
            block_entities,
            comparisons,
            inv_cardinality,
            entity_offsets,
            entity_block_ids,
            kb_of: self.kb_of.clone(),
            num_kbs: self.num_kbs,
            total_comparisons,
        }
    }

    /// Finalises a collection whose block-side slabs are already built:
    /// derives the reciprocal slab and transposes the block slab into the
    /// entity-side CSR.
    ///
    /// Crate-internal invariants the caller must establish (the builder
    /// paths above and the incremental snapshot in [`crate::delta`] all
    /// do): blocks ordered by key string, member lists sorted ascending,
    /// every block's comparison count non-zero, `block_offsets` starting
    /// at 0 with `len == blocks + 1`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn finish(
        mode: ErMode,
        keys: Arc<Interner>,
        block_keys: Vec<Symbol>,
        block_offsets: Vec<u32>,
        block_entities: Vec<EntityId>,
        comparisons: Vec<u64>,
        kb_of: Vec<u16>,
        num_kbs: usize,
        threads: usize,
    ) -> Self {
        debug_assert_eq!(block_offsets.len(), block_keys.len() + 1);
        debug_assert_eq!(comparisons.len(), block_keys.len());
        let inv_cardinality: Vec<f64> = comparisons
            .iter()
            .map(|&c| 1.0 / (c as f64).max(1.0))
            .collect();
        let total_comparisons = comparisons.iter().sum();
        let (entity_offsets, rows) =
            transpose_csr(&block_offsets[1..], &block_entities, kb_of.len(), threads);
        let entity_block_ids: Vec<BlockId> = rows.into_iter().map(BlockId).collect();
        Self {
            mode,
            keys,
            block_keys,
            block_offsets,
            block_entities,
            comparisons,
            inv_cardinality,
            entity_offsets,
            entity_block_ids,
            kb_of,
            num_kbs,
            total_comparisons,
        }
    }

    /// ER mode the collection was built under.
    pub fn mode(&self) -> ErMode {
        self.mode
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.block_keys.len()
    }

    /// Whether there are no blocks.
    pub fn is_empty(&self) -> bool {
        self.block_keys.is_empty()
    }

    /// Iterates the blocks in id (key) order.
    pub fn blocks(&self) -> impl ExactSizeIterator<Item = BlockRef<'_>> + '_ {
        (0..self.len() as u32).map(move |i| self.block(BlockId(i)))
    }

    /// Block view by id.
    pub fn block(&self, id: BlockId) -> BlockRef<'_> {
        BlockRef {
            id,
            key: self.block_keys[id.index()],
            entities: self.block_entities(id),
            comparisons: self.comparisons[id.index()],
        }
    }

    /// Member entities of block `b`, sorted ascending — a slice of the
    /// flat slab.
    #[inline]
    pub fn block_entities(&self, b: BlockId) -> &[EntityId] {
        let i = b.index();
        &self.block_entities[self.block_offsets[i] as usize..self.block_offsets[i + 1] as usize]
    }

    /// Number of members of block `b`.
    #[inline]
    pub fn block_len(&self, b: BlockId) -> usize {
        let i = b.index();
        (self.block_offsets[i + 1] - self.block_offsets[i]) as usize
    }

    /// Comparisons ‖b‖ induced by block `b`.
    #[inline]
    pub fn block_comparisons(&self, b: BlockId) -> u64 {
        self.comparisons[b.index()]
    }

    /// The precomputed ARCS reciprocal `1 / max(‖b‖, 1)` of block `b`.
    #[inline]
    pub fn inv_cardinality(&self, b: BlockId) -> f64 {
        self.inv_cardinality[b.index()]
    }

    /// Interned key of block `b`.
    #[inline]
    pub fn block_key(&self, b: BlockId) -> Symbol {
        self.block_keys[b.index()]
    }

    /// Resolves a block's key to its string.
    pub fn key_str(&self, b: BlockId) -> &str {
        self.keys.resolve(self.block_keys[b.index()])
    }

    /// Blocks containing entity `e`, sorted by block id — a slice of the
    /// inverted slab.
    #[inline]
    pub fn entity_blocks(&self, e: EntityId) -> &[BlockId] {
        let i = e.index();
        &self.entity_block_ids[self.entity_offsets[i] as usize..self.entity_offsets[i + 1] as usize]
    }

    /// Number of entities placed in at least one block.
    pub fn placed_entities(&self) -> usize {
        self.entity_offsets
            .windows(2)
            .filter(|w| w[1] > w[0])
            .count()
    }

    /// Σ over blocks of their member count (the "block assignments" BC).
    pub fn total_assignments(&self) -> u64 {
        self.block_entities.len() as u64
    }

    /// Σ over blocks of their comparisons (with repetitions across blocks).
    pub fn total_comparisons(&self) -> u64 {
        self.total_comparisons
    }

    /// KB id of entity `e` (cached copy of the dataset's partition).
    pub fn kb_of(&self, e: EntityId) -> u16 {
        self.kb_of[e.index()]
    }

    /// Number of entities in the underlying dataset.
    pub fn num_entities(&self) -> usize {
        self.kb_of.len()
    }

    /// Whether `a, b` is a valid comparison under the ER mode.
    #[inline]
    pub fn comparable(&self, a: EntityId, b: EntityId) -> bool {
        a != b && (self.mode == ErMode::Dirty || self.kb_of[a.index()] != self.kb_of[b.index()])
    }

    /// All *distinct* comparable pairs across blocks, normalised `(a < b)`.
    ///
    /// This materialises the deduplicated comparison set — use only at
    /// experiment scale (it is exactly what meta-blocking exists to avoid).
    pub fn distinct_pairs(&self) -> Vec<(EntityId, EntityId)> {
        let mut set: FxHashSet<(EntityId, EntityId)> = FxHashSet::default();
        for b in self.blocks() {
            for (i, &x) in b.entities.iter().enumerate() {
                for &y in &b.entities[i + 1..] {
                    if self.comparable(x, y) {
                        set.insert((x.min(y), x.max(y)));
                    }
                }
            }
        }
        let mut v: Vec<_> = set.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Iterates `(block, pair)` occurrences *with* repetitions — the raw
    /// comparison stream meta-blocking analyses.
    pub fn pair_occurrences(&self) -> impl Iterator<Item = (BlockId, EntityId, EntityId)> + '_ {
        self.blocks().flat_map(move |b| {
            let id = b.id;
            b.entities.iter().enumerate().flat_map(move |(i, &x)| {
                b.entities[i + 1..]
                    .iter()
                    .filter(move |&&y| self.comparable(x, y))
                    .map(move |&y| (id, x.min(y), x.max(y)))
            })
        })
    }

    /// Iterates the comparable co-occurrences of a single entity: one
    /// `(block, 1/‖block‖, other)` item per appearance of a comparable
    /// co-member in a block containing `a`, in ascending block-id order.
    ///
    /// This is the node-centric dual of [`Self::pair_occurrences`]: summing
    /// the items per `other` yields exactly the CBS/ARCS statistics of the
    /// blocking-graph edges incident to `a`. Meta-blocking's streaming
    /// path sweeps this per entity instead of materialising the edge set;
    /// the reciprocal comes from the precomputed per-block slab.
    pub fn co_occurrences(
        &self,
        a: EntityId,
    ) -> impl Iterator<Item = (BlockId, f64, EntityId)> + '_ {
        self.entity_blocks(a).iter().flat_map(move |&bid| {
            let inv_card = self.inv_cardinality(bid);
            self.block_entities(bid)
                .iter()
                .copied()
                .filter(move |&y| self.comparable(a, y))
                .map(move |y| (bid, inv_card, y))
        })
    }

    /// Distribution summary: (min, median, max) block sizes.
    pub fn size_summary(&self) -> (usize, usize, usize) {
        if self.is_empty() {
            return (0, 0, 0);
        }
        let mut sizes: Vec<usize> = (0..self.len() as u32)
            .map(|i| self.block_len(BlockId(i)))
            .collect();
        sizes.sort_unstable();
        (sizes[0], sizes[sizes.len() / 2], sizes[sizes.len() - 1])
    }
}

impl fmt::Debug for BlockCollection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BlockCollection")
            .field("mode", &self.mode)
            .field("blocks", &self.len())
            .field("comparisons", &self.total_comparisons)
            .finish()
    }
}

/// Current slab length as a checked `u32` CSR offset.
fn slab_len(slab: &[EntityId]) -> u32 {
    u32::try_from(slab.len()).expect("block slab exceeds u32::MAX entries")
}

/// Occurrence count per symbol over the (sealed) assignment runs —
/// pass 1 of the shared layout counting sort, entity-range parallel with
/// an additive merge, so thread-count independent.
fn count_symbols(ends: &[u32], syms: &[Symbol], k: usize, threads: usize) -> Vec<u32> {
    let ranges = split_rows(ends, threads);
    merge_counts(&count_cols_per_range(ends, syms, k, &ranges), k)
}

/// Comparisons per CSR block, block-range parallel (each worker owns a
/// disjoint chunk of the output and its own KB scratch).
fn comparisons_per_block(
    offsets: &[u32],
    entities: &[EntityId],
    kb_of: &[u16],
    num_kbs: usize,
    mode: ErMode,
    threads: usize,
) -> Vec<u64> {
    let b = offsets.len() - 1;
    let mut out = vec![0u64; b];
    let ranges = split_rows(&offsets[1..], threads);
    if ranges.len() <= 1 {
        let mut scratch = KbScratch::new(num_kbs);
        for (i, slot) in out.iter_mut().enumerate() {
            let members = &entities[offsets[i] as usize..offsets[i + 1] as usize];
            *slot = count_comparisons(members, kb_of, mode, &mut scratch);
        }
        return out;
    }
    let mut chunks: Vec<(std::ops::Range<usize>, &mut [u64])> = Vec::with_capacity(ranges.len());
    {
        let mut rest: &mut [u64] = &mut out;
        for r in &ranges {
            let (chunk, tail) = rest.split_at_mut(r.end - r.start);
            chunks.push((r.clone(), chunk));
            rest = tail;
        }
    }
    std::thread::scope(|s| {
        for (r, chunk) in chunks {
            s.spawn(move || {
                let mut scratch = KbScratch::new(num_kbs);
                for (slot, i) in chunk.iter_mut().zip(r) {
                    let members = &entities[offsets[i] as usize..offsets[i + 1] as usize];
                    *slot = count_comparisons(members, kb_of, mode, &mut scratch);
                }
            });
        }
    });
    out
}

/// Compacts a provisional block slab, keeping blocks with a non-zero
/// comparison count and remapping ids to the dense survivor order; `key`
/// supplies the retained key per *provisional* index.
fn compact_blocks(
    prov_offsets: &[u32],
    prov_entities: &[EntityId],
    prov_comparisons: &[u64],
    key: impl Fn(usize) -> Symbol,
) -> (Vec<Symbol>, Vec<u32>, Vec<EntityId>, Vec<u64>) {
    let survivors = prov_comparisons.iter().filter(|&&c| c > 0).count();
    let mut block_keys = Vec::with_capacity(survivors);
    let mut block_offsets = Vec::with_capacity(survivors + 1);
    block_offsets.push(0u32);
    let mut block_entities = Vec::new();
    let mut comparisons = Vec::with_capacity(survivors);
    for (i, &c) in prov_comparisons.iter().enumerate() {
        if c == 0 {
            continue;
        }
        block_keys.push(key(i));
        block_entities.extend_from_slice(
            &prov_entities[prov_offsets[i] as usize..prov_offsets[i + 1] as usize],
        );
        block_offsets.push(slab_len(&block_entities));
        comparisons.push(c);
    }
    (block_keys, block_offsets, block_entities, comparisons)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minoan_rdf::DatasetBuilder;

    /// Two KBs with 3 + 2 entities.
    fn dataset() -> Dataset {
        let mut b = DatasetBuilder::new();
        let k0 = b.add_kb("a", "http://a/");
        let k1 = b.add_kb("b", "http://b/");
        for (kb, uri) in [
            (k0, "http://a/0"),
            (k0, "http://a/1"),
            (k0, "http://a/2"),
            (k1, "http://b/3"),
            (k1, "http://b/4"),
        ] {
            b.add_literal(kb, uri, "http://p/label", "x");
        }
        b.build()
    }

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    #[test]
    fn clean_clean_counts_cross_kb_only() {
        let ds = dataset();
        let groups = vec![("t".to_string(), vec![e(0), e(1), e(3)])];
        let c = BlockCollection::from_groups(&ds, ErMode::CleanClean, groups);
        assert_eq!(c.len(), 1);
        // Pairs: (0,1) intra, (0,3), (1,3) cross → 2 comparisons.
        assert_eq!(c.total_comparisons(), 2);
    }

    #[test]
    fn dirty_counts_all_pairs() {
        let ds = dataset();
        let groups = vec![("t".to_string(), vec![e(0), e(1), e(3)])];
        let c = BlockCollection::from_groups(&ds, ErMode::Dirty, groups);
        assert_eq!(c.total_comparisons(), 3);
    }

    #[test]
    fn useless_blocks_are_dropped() {
        let ds = dataset();
        let groups = vec![
            ("single".to_string(), vec![e(0)]),
            ("intra_only".to_string(), vec![e(0), e(1)]),
            ("good".to_string(), vec![e(0), e(3)]),
        ];
        let c = BlockCollection::from_groups(&ds, ErMode::CleanClean, groups);
        assert_eq!(c.len(), 1);
        assert_eq!(c.key_str(BlockId(0)), "good");
        // In dirty mode the intra pair survives.
        let groups = vec![
            ("single".to_string(), vec![e(0)]),
            ("intra_only".to_string(), vec![e(0), e(1)]),
        ];
        let c = BlockCollection::from_groups(&ds, ErMode::Dirty, groups);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn entity_blocks_inverse_view() {
        let ds = dataset();
        let groups = vec![
            ("k1".to_string(), vec![e(0), e(3)]),
            ("k2".to_string(), vec![e(0), e(4)]),
            ("k3".to_string(), vec![e(1), e(3)]),
        ];
        let c = BlockCollection::from_groups(&ds, ErMode::CleanClean, groups);
        assert_eq!(c.entity_blocks(e(0)).len(), 2);
        assert_eq!(c.entity_blocks(e(1)).len(), 1);
        assert_eq!(c.entity_blocks(e(2)).len(), 0);
        assert_eq!(c.placed_entities(), 4);
        assert_eq!(c.total_assignments(), 6);
    }

    #[test]
    fn duplicate_members_are_deduped() {
        let ds = dataset();
        let groups = vec![("t".to_string(), vec![e(0), e(0), e(3), e(3)])];
        let c = BlockCollection::from_groups(&ds, ErMode::CleanClean, groups);
        assert_eq!(c.block(BlockId(0)).len(), 2);
        assert_eq!(c.total_comparisons(), 1);
    }

    #[test]
    fn distinct_pairs_dedup_across_blocks() {
        let ds = dataset();
        let groups = vec![
            ("k1".to_string(), vec![e(0), e(3)]),
            ("k2".to_string(), vec![e(0), e(3), e(4)]),
        ];
        let c = BlockCollection::from_groups(&ds, ErMode::CleanClean, groups);
        // Occurrences: (0,3) twice, (0,4), (3,4) intra-b? 3 and 4 same KB → no.
        assert_eq!(c.total_comparisons(), 3);
        let pairs = c.distinct_pairs();
        assert_eq!(pairs, vec![(e(0), e(3)), (e(0), e(4))]);
        assert_eq!(c.pair_occurrences().count(), 3);
    }

    #[test]
    fn groups_are_sorted_by_key() {
        let ds = dataset();
        let groups = vec![
            ("zz".to_string(), vec![e(0), e(3)]),
            ("aa".to_string(), vec![e(1), e(4)]),
        ];
        let c = BlockCollection::from_groups(&ds, ErMode::CleanClean, groups);
        assert_eq!(c.key_str(BlockId(0)), "aa");
        assert_eq!(c.key_str(BlockId(1)), "zz");
    }

    #[test]
    fn size_summary_handles_empty() {
        let ds = dataset();
        let c = BlockCollection::from_groups(
            &ds,
            ErMode::CleanClean,
            Vec::<(String, Vec<EntityId>)>::new(),
        );
        assert_eq!(c.size_summary(), (0, 0, 0));
        assert!(c.is_empty());
    }

    #[test]
    fn inv_cardinality_slab_matches_comparisons() {
        let ds = dataset();
        let groups = vec![
            ("k1".to_string(), vec![e(0), e(3)]),
            ("k2".to_string(), vec![e(0), e(1), e(3), e(4)]),
        ];
        let c = BlockCollection::from_groups(&ds, ErMode::CleanClean, groups);
        for b in c.blocks() {
            let expect = 1.0 / (b.comparisons as f64).max(1.0);
            assert_eq!(c.inv_cardinality(b.id).to_bits(), expect.to_bits());
        }
    }

    /// The string-free assignment path must produce exactly the same
    /// collection as `from_groups` given the same logical groups, at
    /// every thread count.
    #[test]
    fn assignments_match_groups_at_every_thread_count() {
        let ds = dataset();
        // Entity → keys (entities visited in ascending order, with
        // duplicates to exercise the seal-time dedup).
        let per_entity: [&[&str]; 5] = [
            &["knossos", "crete", "knossos"],
            &["athens", "crete"],
            &[],
            &["knossos", "athens"],
            &["crete"],
        ];
        let mut groups: std::collections::BTreeMap<String, Vec<EntityId>> = Default::default();
        for (i, keys) in per_entity.iter().enumerate() {
            let mut seen: Vec<&str> = keys.to_vec();
            seen.sort_unstable();
            seen.dedup();
            for k in seen {
                groups.entry(k.to_string()).or_default().push(e(i as u32));
            }
        }
        let reference = BlockCollection::from_groups(
            &ds,
            ErMode::CleanClean,
            groups.into_iter().collect::<Vec<_>>(),
        );
        for threads in [1usize, 2, 3, 8] {
            let mut asg = KeyAssignments::with_capacity(ds.len());
            for keys in per_entity.iter() {
                for k in keys.iter() {
                    asg.push_key(k);
                }
                asg.seal_entity();
            }
            let c = BlockCollection::from_assignments_with_threads(
                &ds,
                ErMode::CleanClean,
                asg,
                threads,
            );
            assert_eq!(c.len(), reference.len(), "threads = {threads}");
            for (a, b) in c.blocks().zip(reference.blocks()) {
                assert_eq!(c.key_str(a.id), reference.key_str(b.id));
                assert_eq!(a.entities, b.entities);
                assert_eq!(a.comparisons, b.comparisons);
            }
            for i in 0..ds.len() as u32 {
                assert_eq!(c.entity_blocks(e(i)), reference.entity_blocks(e(i)));
            }
            assert_eq!(c.total_comparisons(), reference.total_comparisons());
        }
    }

    #[test]
    fn retain_blocks_matches_legacy_rebuild() {
        let ds = dataset();
        let groups = vec![
            ("k1".to_string(), vec![e(0), e(3)]),
            ("k2".to_string(), vec![e(0), e(1), e(3), e(4)]),
            ("k3".to_string(), vec![e(1), e(4)]),
        ];
        let c = BlockCollection::from_groups(&ds, ErMode::CleanClean, groups);
        let keep = [true, false, true];
        let fast = c.retain_blocks(&keep, 2);
        let legacy = c.rebuild_from_blocks(
            c.blocks()
                .filter(|b| keep[b.id.index()])
                .map(|b| (b.key, b.entities.to_vec()))
                .collect(),
        );
        assert_eq!(fast.len(), legacy.len());
        for (a, b) in fast.blocks().zip(legacy.blocks()) {
            assert_eq!(fast.key_str(a.id), legacy.key_str(b.id));
            assert_eq!(a.entities, b.entities);
            assert_eq!(a.comparisons, b.comparisons);
        }
        for i in 0..ds.len() as u32 {
            assert_eq!(fast.entity_blocks(e(i)), legacy.entity_blocks(e(i)));
        }
    }
}
