//! Block scheduling: the classic pay-as-you-go *blocking* baseline.
//!
//! Before meta-blocking, progressive ER over blocks was done by *ordering
//! the blocks themselves* by utility — smaller blocks first, since the
//! probability that a comparison inside a block is a match shrinks with
//! the block's comparison count — and streaming comparisons block by
//! block, deduplicating pairs across blocks (each distinct pair is emitted
//! at its highest-utility block only).
//!
//! The engine's `Strategy::Batch` over this stream reproduces that
//! baseline, giving E4 a third comparison point between random order and
//! graph-based scheduling.

use crate::collection::{BlockCollection, BlockId};
use minoan_common::FxHashSet;
use minoan_rdf::EntityId;

/// Utility of a block: `1 / ‖b‖` (the ARCS block term) — the probability
/// proxy the block-scheduling literature uses.
pub fn block_utility(comparisons: u64) -> f64 {
    1.0 / comparisons.max(1) as f64
}

/// Produces the deduplicated comparison stream in block-utility order.
///
/// Blocks are visited by decreasing utility (ties: block id); within a
/// block, pairs in member order; a pair already emitted by an earlier
/// block is skipped. Each pair carries its emitting block's utility as the
/// weight.
pub fn scheduled_pairs(collection: &BlockCollection) -> Vec<(EntityId, EntityId, f64)> {
    let mut order: Vec<usize> = (0..collection.len()).collect();
    order.sort_by(|&x, &y| {
        let (bx, by) = (
            collection.block_comparisons(BlockId(x as u32)),
            collection.block_comparisons(BlockId(y as u32)),
        );
        bx.cmp(&by).then(x.cmp(&y))
    });
    let mut seen: FxHashSet<(EntityId, EntityId)> = FxHashSet::default();
    let mut out = Vec::new();
    for idx in order {
        let block = collection.block(BlockId(idx as u32));
        let utility = block_utility(block.comparisons);
        for (i, &x) in block.entities.iter().enumerate() {
            for &y in &block.entities[i + 1..] {
                if !collection.comparable(x, y) {
                    continue;
                }
                let key = (x.min(y), x.max(y));
                if seen.insert(key) {
                    out.push((key.0, key.1, utility));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::token_blocking;
    use crate::collection::ErMode;
    use minoan_datagen::{generate, profiles};
    use minoan_rdf::DatasetBuilder;

    #[test]
    fn utility_is_inverse_comparisons() {
        assert_eq!(block_utility(1), 1.0);
        assert_eq!(block_utility(4), 0.25);
        assert_eq!(block_utility(0), 1.0, "degenerate blocks clamp");
    }

    #[test]
    fn pairs_are_deduplicated_and_utility_ordered() {
        let mut b = DatasetBuilder::new();
        let k0 = b.add_kb("a", "http://a/");
        let k1 = b.add_kb("b", "http://b/");
        for i in 0..3 {
            b.add_literal(k0, &format!("http://a/{i}"), "http://p", "x");
        }
        for i in 3..6 {
            b.add_literal(k1, &format!("http://b/{i}"), "http://p", "x");
        }
        let ds = b.build();
        let e = EntityId;
        let groups = vec![
            ("big".to_string(), vec![e(0), e(1), e(3), e(4)]), // 4 comparisons
            ("small".to_string(), vec![e(0), e(3)]),           // 1 comparison
        ];
        let c = BlockCollection::from_groups(&ds, ErMode::CleanClean, groups);
        let pairs = scheduled_pairs(&c);
        // (0,3) must come from the small block with utility 1.0, first.
        assert_eq!(pairs[0], (e(0), e(3), 1.0));
        // No duplicates; total = distinct pairs.
        assert_eq!(pairs.len(), c.distinct_pairs().len());
        // Weights are non-increasing.
        assert!(pairs.windows(2).all(|w| w[0].2 >= w[1].2));
    }

    #[test]
    fn stream_covers_exactly_the_distinct_pairs() {
        let g = generate(&profiles::center_dense(120, 5));
        let c = token_blocking(&g.dataset, ErMode::CleanClean);
        let stream = scheduled_pairs(&c);
        let stream_set: std::collections::HashSet<_> =
            stream.iter().map(|&(a, b, _)| (a, b)).collect();
        let distinct: std::collections::HashSet<_> = c.distinct_pairs().into_iter().collect();
        assert_eq!(stream_set, distinct);
        assert_eq!(stream.len(), distinct.len(), "no pair emitted twice");
    }

    #[test]
    fn early_stream_is_denser_in_matches_than_late() {
        // The whole point of the ordering: the first half of the stream
        // should contain more true matches than the second half.
        let g = generate(&profiles::center_dense(200, 9));
        let c = token_blocking(&g.dataset, ErMode::CleanClean);
        let stream = scheduled_pairs(&c);
        let half = stream.len() / 2;
        let hits = |part: &[(EntityId, EntityId, f64)]| {
            part.iter()
                .filter(|&&(a, b, _)| g.truth.is_match(a, b))
                .count()
        };
        let early = hits(&stream[..half]);
        let late = hits(&stream[half..]);
        assert!(
            early > late,
            "utility order should front-load matches: {early} vs {late}"
        );
    }

    #[test]
    fn empty_collection_empty_stream() {
        let ds = DatasetBuilder::new().build();
        let c = token_blocking(&ds, ErMode::CleanClean);
        assert!(scheduled_pairs(&c).is_empty());
    }
}
