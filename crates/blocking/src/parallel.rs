//! Blocking as MapReduce jobs (reference \[5\]'s substrate).
//!
//! * **map**: entity → `(key, entity)` for every distinct blocking key
//!   (tokens, or q-grams of tokens);
//! * **reduce**: key → block (member list), dropping useless blocks.
//!
//! The outputs are bit-identical to the serial builders; the point of this
//! module is the E7 scalability experiment and fidelity to the paper's
//! "parallel processing power of a computer cluster via Hadoop MapReduce".

use crate::collection::{BlockCollection, ErMode};
use crate::qgrams;
use minoan_common::FxHashSet;
use minoan_mapreduce::Engine;
use minoan_rdf::{Dataset, EntityId};

/// Runs token blocking on `engine`. Equivalent to the serial builder.
pub fn parallel_token_blocking(
    dataset: &Dataset,
    mode: ErMode,
    engine: &Engine,
) -> BlockCollection {
    parallel_token_blocking_with_stats(dataset, mode, engine).0
}

/// As [`parallel_token_blocking`], also returning the job's execution
/// statistics (used by the scalability experiment E7).
pub fn parallel_token_blocking_with_stats(
    dataset: &Dataset,
    mode: ErMode,
    engine: &Engine,
) -> (BlockCollection, minoan_mapreduce::JobStats) {
    let inputs: Vec<EntityId> = dataset.entities().collect();
    let result = engine.run(
        inputs,
        |&e, emit| {
            let mut tokens = dataset.blocking_tokens(e);
            tokens.sort_unstable();
            tokens.dedup();
            for t in tokens {
                emit(t, e);
            }
        },
        |token, members, out| {
            out.push((token.clone(), members.clone()));
        },
    );
    (
        BlockCollection::from_groups(dataset, mode, result.output),
        result.stats,
    )
}

/// Runs q-grams blocking on `engine`. Equivalent to
/// [`crate::qgrams::qgram_blocking`].
///
/// # Panics
/// Panics if `q == 0`.
pub fn parallel_qgram_blocking(
    dataset: &Dataset,
    mode: ErMode,
    q: usize,
    engine: &Engine,
) -> BlockCollection {
    assert!(q > 0, "q must be positive");
    let inputs: Vec<EntityId> = dataset.entities().collect();
    let result = engine.run(
        inputs,
        |&e, emit| {
            let mut keys: FxHashSet<String> = FxHashSet::default();
            for token in dataset.blocking_tokens(e) {
                for g in qgrams::qgrams(&token, q) {
                    keys.insert(g);
                }
            }
            let mut keys: Vec<String> = keys.into_iter().collect();
            keys.sort_unstable();
            for k in keys {
                emit(k, e);
            }
        },
        |key, members, out| {
            out.push((key.clone(), members.clone()));
        },
    );
    BlockCollection::from_groups(dataset, mode, result.output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::token_blocking;
    use minoan_datagen::{generate, profiles};

    #[test]
    fn parallel_matches_serial() {
        let g = generate(&profiles::center_dense(120, 2));
        let serial = token_blocking(&g.dataset, ErMode::CleanClean);
        for workers in [1, 4] {
            let par =
                parallel_token_blocking(&g.dataset, ErMode::CleanClean, &Engine::new(workers));
            assert_eq!(par.len(), serial.len());
            assert_eq!(par.total_comparisons(), serial.total_comparisons());
            for (a, b) in par.blocks().zip(serial.blocks()) {
                assert_eq!(a.entities, b.entities);
            }
        }
    }

    #[test]
    fn parallel_qgrams_matches_serial() {
        let g = generate(&profiles::center_dense(80, 3));
        let serial = crate::qgrams::qgram_blocking(&g.dataset, ErMode::CleanClean, 3);
        for workers in [1, 4] {
            let par =
                parallel_qgram_blocking(&g.dataset, ErMode::CleanClean, 3, &Engine::new(workers));
            assert_eq!(par.len(), serial.len());
            assert_eq!(par.total_comparisons(), serial.total_comparisons());
        }
    }

    #[test]
    fn works_in_dirty_mode() {
        let g = generate(&profiles::dirty_single(60, 2));
        let par = parallel_token_blocking(&g.dataset, ErMode::Dirty, &Engine::new(2));
        let serial = token_blocking(&g.dataset, ErMode::Dirty);
        assert_eq!(par.total_comparisons(), serial.total_comparisons());
    }
}
