//! Comparison-based block purging.
//!
//! Token blocking creates a power-law block size distribution; the largest
//! blocks (stop-word-like tokens, `rdf:type` values) contribute a huge
//! share of the comparisons but almost no matching evidence. Purging drops
//! them with a comparison-based heuristic in the style of Papadakis et
//! al. / JedAI's `ComparisonsBasedBlockPurging`:
//!
//! Let `CC(d)` and `BC(d)` be the cumulative comparisons and block
//! assignments over blocks with per-block comparisons `‖b‖ ≤ d`. The ratio
//! `CC/BC` (comparisons paid per unit of blocking evidence) is dominated by
//! the largest blocks. Scanning distinct cardinalities from the largest
//! down, a level is purged as long as removing it still improves the ratio
//! by more than the smoothing factor; the scan stops at the first level
//! whose removal no longer pays.

use crate::collection::{BlockCollection, BlockId};
use minoan_common::default_threads;

/// Default smoothing factor (JedAI's value).
pub const DEFAULT_SMOOTHING: f64 = 1.025;

/// Outcome of a purge: the new collection plus what was removed.
#[derive(Debug)]
pub struct PurgeOutcome {
    /// The purged collection.
    pub collection: BlockCollection,
    /// Number of blocks removed.
    pub purged_blocks: usize,
    /// Comparisons removed (with repetitions).
    pub purged_comparisons: u64,
    /// The cardinality limit that was applied (`u64::MAX` = nothing purged).
    pub max_comparisons_per_block: u64,
}

/// Purges oversized blocks with smoothing factor [`DEFAULT_SMOOTHING`].
pub fn purge(collection: &BlockCollection) -> PurgeOutcome {
    purge_with(collection, DEFAULT_SMOOTHING)
}

/// Purges oversized blocks; `smoothing > 1` controls how large the marginal
/// ratio improvement must stay for the scan to keep cutting (closer to 1 ⇒
/// more aggressive purging).
///
/// This is a pure *index pass* over the flat collection: the cardinality
/// scan reads the per-block comparison slab, the verdict is a per-block
/// retain mask, and the successor collection is written straight into
/// fresh slabs with remapped block ids — kept member runs are memcpy'd,
/// nothing is re-hashed or re-interned.
pub fn purge_with(collection: &BlockCollection, smoothing: f64) -> PurgeOutcome {
    purge_with_threads(collection, smoothing, default_threads())
}

/// As [`purge_with`] with an explicit worker count for the successor's
/// slab build (the pipeline threads its `workers` knob through here).
/// The result never depends on `threads`.
pub fn purge_with_threads(
    collection: &BlockCollection,
    smoothing: f64,
    threads: usize,
) -> PurgeOutcome {
    let limit = purge_limit(collection, smoothing);
    let keep: Vec<bool> = (0..collection.len() as u32)
        .map(|i| collection.block_comparisons(BlockId(i)) <= limit)
        .collect();
    let purged_blocks = keep.iter().filter(|&&k| !k).count();
    let new = collection.retain_blocks(&keep, threads);
    PurgeOutcome {
        purged_comparisons: collection.total_comparisons() - new.total_comparisons(),
        collection: new,
        purged_blocks,
        max_comparisons_per_block: limit,
    }
}

/// The comparison-cardinality limit the greedy CC/BC scan settles on
/// (`u64::MAX` = keep everything).
fn purge_limit(collection: &BlockCollection, smoothing: f64) -> u64 {
    assert!(smoothing > 1.0, "smoothing factor must exceed 1");
    if collection.is_empty() {
        return u64::MAX;
    }

    // Distinct cardinalities ascending, with cumulative CC and BC.
    let mut sorted: Vec<(u64, u64)> = collection
        .blocks()
        .map(|b| (b.comparisons, b.len() as u64))
        .collect();
    sorted.sort_unstable();
    let mut levels: Vec<(u64, u64, u64)> = Vec::new(); // (card, cum_cc, cum_bc)
    let (mut cc, mut bc) = (0u64, 0u64);
    for (card, size) in sorted {
        cc += card;
        bc += size;
        match levels.last_mut() {
            Some((c, lcc, lbc)) if *c == card => {
                *lcc = cc;
                *lbc = bc;
            }
            _ => levels.push((card, cc, bc)),
        }
    }

    // Greedy scan from the largest level down: keep cutting while the
    // CC/BC ratio improves by more than `smoothing`.
    let ratio = |i: usize| levels[i].1 as f64 / levels[i].2 as f64;
    let mut limit = u64::MAX; // keep everything
    let mut i = levels.len() - 1;
    while i > 0 {
        if ratio(i - 1) * smoothing < ratio(i) {
            limit = levels[i - 1].0;
            i -= 1;
        } else {
            break;
        }
    }
    limit
}

/// The pre-flat purge: identical cardinality scan, but the successor is
/// produced by the legacy owned-`Vec` rebuild (per-block `to_vec`,
/// re-sort, re-count, re-intern). Kept **only** as the measured baseline
/// and equivalence oracle for [`purge_with`] — see the `blocking_layout`
/// suite and the `blockbuild` bench family.
#[doc(hidden)]
pub fn legacy_purge_with(collection: &BlockCollection, smoothing: f64) -> PurgeOutcome {
    let limit = purge_limit(collection, smoothing);
    let keep: Vec<_> = collection
        .blocks()
        .filter(|b| b.comparisons <= limit)
        .map(|b| (b.key, b.entities.to_vec()))
        .collect();
    let purged_blocks = collection.len() - keep.len();
    // lint:allow(legacy-oracle-reach): purge outcome reporting rebuilds via the compat path
    let new = collection.rebuild_from_blocks(keep);
    PurgeOutcome {
        purged_comparisons: collection.total_comparisons() - new.total_comparisons(),
        collection: new,
        purged_blocks,
        max_comparisons_per_block: limit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::token_blocking;
    use crate::collection::ErMode;
    use minoan_datagen::{generate, profiles};
    use minoan_rdf::{DatasetBuilder, EntityId};

    #[test]
    fn purging_removes_the_giant_blocks() {
        // Real-ish data: the rdf:type blocks are enormous.
        let g = generate(&profiles::center_dense(300, 3));
        let c = token_blocking(&g.dataset, ErMode::CleanClean);
        let out = purge(&c);
        assert!(
            out.purged_blocks > 0,
            "expected oversized blocks to be purged"
        );
        assert!(out.collection.total_comparisons() < c.total_comparisons());
        assert!(out.max_comparisons_per_block < u64::MAX);
        // Purging must not remove entities wholesale: most remain placed.
        assert!(out.collection.placed_entities() as f64 > 0.9 * c.placed_entities() as f64);
    }

    #[test]
    fn purging_keeps_recall_high() {
        let g = generate(&profiles::center_dense(250, 8));
        let c = token_blocking(&g.dataset, ErMode::CleanClean);
        let out = purge(&c);
        let pairs: std::collections::HashSet<_> =
            out.collection.distinct_pairs().into_iter().collect();
        let found = g
            .truth
            .matching_pair_iter()
            .filter(|&(a, b)| pairs.contains(&(a, b)))
            .count() as f64;
        let pc = found / g.truth.matching_pairs() as f64;
        assert!(pc > 0.9, "purging lost too much recall: PC = {pc}");
    }

    #[test]
    fn uniform_blocks_are_untouched() {
        // All blocks the same size: a single level, nothing to cut.
        let mut b = DatasetBuilder::new();
        let k0 = b.add_kb("a", "http://a/");
        let k1 = b.add_kb("b", "http://b/");
        for i in 0..10 {
            b.add_literal(k0, &format!("http://a/{i}"), "http://p", &format!("tok{i}"));
            b.add_literal(k1, &format!("http://b/{i}"), "http://p", &format!("tok{i}"));
        }
        let ds = b.build();
        let groups: Vec<(String, Vec<EntityId>)> = (0..10)
            .map(|i| (format!("tok{i}"), vec![EntityId(i), EntityId(i + 10)]))
            .collect();
        let c = crate::BlockCollection::from_groups(&ds, ErMode::CleanClean, groups);
        let out = purge(&c);
        assert_eq!(out.purged_blocks, 0);
        assert_eq!(out.collection.total_comparisons(), c.total_comparisons());
        assert_eq!(out.max_comparisons_per_block, u64::MAX);
    }

    #[test]
    fn one_giant_block_among_small_ones_is_purged() {
        let mut b = DatasetBuilder::new();
        let k0 = b.add_kb("a", "http://a/");
        let k1 = b.add_kb("b", "http://b/");
        for i in 0..40 {
            b.add_literal(k0, &format!("http://a/{i}"), "http://p", "x");
        }
        for i in 40..80 {
            b.add_literal(k1, &format!("http://b/{i}"), "http://p", "x");
        }
        let ds = b.build();
        let mut groups: Vec<(String, Vec<EntityId>)> = (0..40u32)
            .map(|i| (format!("tok{i:02}"), vec![EntityId(i), EntityId(i + 40)]))
            .collect();
        // The giant block holds everyone: 40×40 = 1600 comparisons.
        groups.push(("common".into(), (0..80).map(EntityId).collect()));
        let c = crate::BlockCollection::from_groups(&ds, ErMode::CleanClean, groups);
        let out = purge(&c);
        assert_eq!(out.purged_blocks, 1);
        assert_eq!(out.collection.len(), 40);
        assert_eq!(out.purged_comparisons, 1600);
    }

    #[test]
    fn empty_collection_is_fine() {
        let ds = DatasetBuilder::new().build();
        let c = token_blocking(&ds, ErMode::CleanClean);
        let out = purge(&c);
        assert_eq!(out.purged_blocks, 0);
        assert!(out.collection.is_empty());
    }

    #[test]
    fn lower_smoothing_purges_at_least_as_much() {
        let g = generate(&profiles::center_dense(250, 5));
        let c = token_blocking(&g.dataset, ErMode::CleanClean);
        let gentle = purge_with(&c, 2.0);
        let aggressive = purge_with(&c, 1.01);
        assert!(aggressive.collection.total_comparisons() <= gentle.collection.total_comparisons());
    }

    #[test]
    fn mask_purge_matches_legacy_purge() {
        let g = generate(&profiles::center_dense(220, 6));
        let c = token_blocking(&g.dataset, ErMode::CleanClean);
        for smoothing in [1.01, 1.025, 2.0] {
            let fast = purge_with(&c, smoothing);
            let legacy = legacy_purge_with(&c, smoothing);
            assert_eq!(fast.purged_blocks, legacy.purged_blocks);
            assert_eq!(fast.purged_comparisons, legacy.purged_comparisons);
            assert_eq!(
                fast.max_comparisons_per_block,
                legacy.max_comparisons_per_block
            );
            assert_eq!(fast.collection.len(), legacy.collection.len());
            for (a, b) in fast.collection.blocks().zip(legacy.collection.blocks()) {
                assert_eq!(
                    fast.collection.key_str(a.id),
                    legacy.collection.key_str(b.id)
                );
                assert_eq!(a.entities, b.entities);
                assert_eq!(a.comparisons, b.comparisons);
            }
            for e in g.dataset.entities() {
                assert_eq!(
                    fast.collection.entity_blocks(e),
                    legacy.collection.entity_blocks(e)
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "smoothing factor")]
    fn smoothing_must_exceed_one() {
        let ds = DatasetBuilder::new().build();
        let c = token_blocking(&ds, ErMode::CleanClean);
        let _ = purge_with(&c, 1.0);
    }
}
