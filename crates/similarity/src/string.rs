//! Character-level string similarity.
//!
//! Used on name-like attribute values ("Mikis Theodorakis" vs
//! "M. Theodorakis") where token overlap is too coarse. All functions are
//! Unicode-aware (operate on `char`s) and return values in `[0, 1]` except
//! [`levenshtein`], which returns the raw edit distance.

/// Levenshtein edit distance (insert/delete/substitute, unit costs),
/// two-row dynamic program: `O(|a|·|b|)` time, `O(min)` memory.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            curr[j + 1] = sub.min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// Levenshtein similarity `1 − dist / max(|a|,|b|)`; 1.0 for two empty
/// strings.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max = a.chars().count().max(b.chars().count());
    if max == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max as f64
}

/// Jaro similarity.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches_a: Vec<char> = Vec::new();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                matches_a.push(ca);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    let matches_b: Vec<char> = b
        .iter()
        .zip(b_used.iter())
        .filter(|(_, &u)| u)
        .map(|(&c, _)| c)
        .collect();
    let transpositions = matches_a
        .iter()
        .zip(matches_b.iter())
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// Jaro–Winkler similarity with the standard prefix scale 0.1 and prefix
/// length cap 4.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count();
    (j + prefix as f64 * 0.1 * (1.0 - j)).min(1.0)
}

/// Dice similarity over the multisets of character q-grams (default use:
/// `q = 2`, bigrams). Strings shorter than `q` fall back to exact match.
pub fn qgram_similarity(a: &str, b: &str, q: usize) -> f64 {
    assert!(q >= 1, "q must be positive");
    let grams = |s: &str| -> Vec<String> {
        let cs: Vec<char> = s.chars().collect();
        if cs.len() < q {
            return Vec::new();
        }
        (0..=cs.len() - q)
            .map(|i| cs[i..i + q].iter().collect())
            .collect()
    };
    let (mut ga, mut gb) = (grams(a), grams(b));
    if ga.is_empty() || gb.is_empty() {
        return if a == b && !a.is_empty() { 1.0 } else { 0.0 };
    }
    ga.sort_unstable();
    gb.sort_unstable();
    // Multiset intersection by merge.
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < ga.len() && j < gb.len() {
        match ga[i].cmp(&gb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    2.0 * inter as f64 / (ga.len() + gb.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("same", "same"), 0);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn levenshtein_unicode() {
        assert_eq!(levenshtein("καφές", "καφέ"), 1);
    }

    #[test]
    fn levenshtein_similarity_bounds() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("ab", "ab"), 1.0);
        assert_eq!(levenshtein_similarity("ab", "cd"), 0.0);
    }

    #[test]
    fn jaro_known_values() {
        assert!((jaro("MARTHA", "MARHTA") - 0.944_444).abs() < 1e-5);
        assert!((jaro("DIXON", "DICKSONX") - 0.766_667).abs() < 1e-5);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaro_winkler_known_values() {
        assert!((jaro_winkler("MARTHA", "MARHTA") - 0.961_111).abs() < 1e-5);
        assert!((jaro_winkler("DWAYNE", "DUANE") - 0.84).abs() < 1e-2);
        assert_eq!(jaro_winkler("identical", "identical"), 1.0);
    }

    #[test]
    fn jaro_winkler_rewards_shared_prefix() {
        assert!(jaro_winkler("theodorakis", "theodorakos") > jaro("theodorakis", "theodorakos"));
    }

    #[test]
    fn qgram_basics() {
        assert_eq!(qgram_similarity("night", "night", 2), 1.0);
        assert_eq!(qgram_similarity("abc", "xyz", 2), 0.0);
        let s = qgram_similarity("nacht", "night", 2);
        assert!(s > 0.2 && s < 0.5, "got {s}");
        // Shorter than q: exact-match fallback.
        assert_eq!(qgram_similarity("a", "a", 2), 1.0);
        assert_eq!(qgram_similarity("a", "b", 2), 0.0);
        assert_eq!(qgram_similarity("", "", 2), 0.0);
    }

    proptest::proptest! {
        #[test]
        fn string_measures_bounded_and_reflexive(a in "[a-zα-ω]{0,12}", b in "[a-zα-ω]{0,12}") {
            for f in [jaro, jaro_winkler, levenshtein_similarity] {
                let s = f(&a, &b);
                proptest::prop_assert!((0.0..=1.0 + 1e-12).contains(&s), "{s}");
                proptest::prop_assert!((f(&a, &b) - f(&b, &a)).abs() < 1e-12);
            }
            if !a.is_empty() {
                proptest::prop_assert_eq!(jaro(&a, &a), 1.0);
                proptest::prop_assert_eq!(levenshtein(&a, &a), 0);
            }
        }

        #[test]
        fn levenshtein_triangle_inequality(a in "[a-c]{0,8}", b in "[a-c]{0,8}", c in "[a-c]{0,8}") {
            proptest::prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        }
    }
}
