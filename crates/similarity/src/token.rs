//! Token-set similarity coefficients.
//!
//! All functions operate on **sorted, deduplicated** slices of token ids
//! (`u32` symbols from an interner). Sortedness lets every coefficient run
//! as a linear merge without hashing; debug builds assert the invariant.
//!
//! Use [`prepare`] to turn an arbitrary token-id list into canonical form.

/// Sorts and deduplicates a token list in place, returning it in the
/// canonical form the coefficients expect.
pub fn prepare(mut tokens: Vec<u32>) -> Vec<u32> {
    tokens.sort_unstable();
    tokens.dedup();
    tokens
}

fn assert_canonical(xs: &[u32]) {
    debug_assert!(
        xs.windows(2).all(|w| w[0] < w[1]),
        "tokens must be sorted+deduped"
    );
}

/// Size of the intersection of two canonical token slices (linear merge).
pub fn intersection_size(a: &[u32], b: &[u32]) -> usize {
    assert_canonical(a);
    assert_canonical(b);
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Jaccard coefficient `|A∩B| / |A∪B|`. Empty∪empty ⇒ 0.
pub fn jaccard(a: &[u32], b: &[u32]) -> f64 {
    let inter = intersection_size(a, b);
    let union = a.len() + b.len() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// Dice coefficient `2|A∩B| / (|A|+|B|)`.
pub fn dice(a: &[u32], b: &[u32]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    2.0 * intersection_size(a, b) as f64 / (a.len() + b.len()) as f64
}

/// Overlap coefficient `|A∩B| / min(|A|,|B|)`.
pub fn overlap_coefficient(a: &[u32], b: &[u32]) -> f64 {
    let m = a.len().min(b.len());
    if m == 0 {
        0.0
    } else {
        intersection_size(a, b) as f64 / m as f64
    }
}

/// Set cosine `|A∩B| / sqrt(|A||B|)`.
pub fn cosine(a: &[u32], b: &[u32]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    intersection_size(a, b) as f64 / ((a.len() * b.len()) as f64).sqrt()
}

/// Weighted Jaccard: `Σ_{t∈A∩B} w(t) / Σ_{t∈A∪B} w(t)`.
///
/// With IDF weights this is the measure MinoanER's matcher defaults to:
/// rare shared tokens ("knossos") count far more than ubiquitous ones
/// ("city"). `weight` must return non-negative values.
pub fn weighted_jaccard(a: &[u32], b: &[u32], mut weight: impl FnMut(u32) -> f64) -> f64 {
    assert_canonical(a);
    assert_canonical(b);
    let (mut i, mut j) = (0usize, 0usize);
    let (mut inter_w, mut union_w) = (0.0f64, 0.0f64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                union_w += weight(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                union_w += weight(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                let w = weight(a[i]);
                inter_w += w;
                union_w += w;
                i += 1;
                j += 1;
            }
        }
    }
    for &t in &a[i..] {
        union_w += weight(t);
    }
    for &t in &b[j..] {
        union_w += weight(t);
    }
    if union_w <= 0.0 {
        0.0
    } else {
        inter_w / union_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_canonicalises() {
        assert_eq!(prepare(vec![3, 1, 3, 2, 1]), vec![1, 2, 3]);
        assert_eq!(prepare(vec![]), Vec::<u32>::new());
    }

    #[test]
    fn jaccard_basics() {
        assert_eq!(jaccard(&[1, 2, 3], &[2, 3, 4]), 0.5);
        assert_eq!(jaccard(&[1, 2], &[1, 2]), 1.0);
        assert_eq!(jaccard(&[1], &[2]), 0.0);
        assert_eq!(jaccard(&[], &[]), 0.0);
        assert_eq!(jaccard(&[], &[1]), 0.0);
    }

    #[test]
    fn dice_and_overlap_and_cosine() {
        let (a, b) = (&[1u32, 2, 3][..], &[2u32, 3, 4, 5][..]);
        assert!((dice(a, b) - 4.0 / 7.0).abs() < 1e-12);
        assert!((overlap_coefficient(a, b) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cosine(a, b) - 2.0 / 12f64.sqrt()).abs() < 1e-12);
        assert_eq!(dice(&[], &[]), 0.0);
        assert_eq!(overlap_coefficient(&[], &[1]), 0.0);
        assert_eq!(cosine(&[], &[1]), 0.0);
    }

    #[test]
    fn coefficients_are_symmetric() {
        let (a, b) = (&[1u32, 4, 9, 11][..], &[2u32, 4, 11, 30, 31][..]);
        assert_eq!(jaccard(a, b), jaccard(b, a));
        assert_eq!(dice(a, b), dice(b, a));
        assert_eq!(overlap_coefficient(a, b), overlap_coefficient(b, a));
        assert_eq!(cosine(a, b), cosine(b, a));
    }

    #[test]
    fn weighted_jaccard_equals_jaccard_for_unit_weights() {
        let (a, b) = (&[1u32, 2, 3][..], &[2u32, 3, 4][..]);
        assert!((weighted_jaccard(a, b, |_| 1.0) - jaccard(a, b)).abs() < 1e-12);
    }

    #[test]
    fn weighted_jaccard_boosts_rare_tokens() {
        // Shared token 7 is rare (weight 10), shared token 1 common (0.1).
        let rare_shared = weighted_jaccard(&[1, 7], &[2, 7], |t| if t == 7 { 10.0 } else { 0.1 });
        let common_shared = weighted_jaccard(&[1, 7], &[1, 9], |t| if t == 7 { 10.0 } else { 0.1 });
        assert!(rare_shared > 0.9);
        assert!(common_shared < 0.1);
    }

    #[test]
    fn weighted_jaccard_zero_weights() {
        assert_eq!(weighted_jaccard(&[1, 2], &[1, 2], |_| 0.0), 0.0);
    }

    proptest::proptest! {
        #[test]
        fn jaccard_bounds_and_identity(mut a in proptest::collection::vec(0u32..200, 0..40),
                                       mut b in proptest::collection::vec(0u32..200, 0..40)) {
            a.sort_unstable(); a.dedup();
            b.sort_unstable(); b.dedup();
            let j = jaccard(&a, &b);
            proptest::prop_assert!((0.0..=1.0).contains(&j));
            if !a.is_empty() {
                proptest::prop_assert_eq!(jaccard(&a, &a), 1.0);
            }
            // Jaccard ≤ Dice ≤ overlap for non-empty inputs.
            let d = dice(&a, &b);
            proptest::prop_assert!(j <= d + 1e-12);
            if !a.is_empty() && !b.is_empty() {
                proptest::prop_assert!(d <= overlap_coefficient(&a, &b) + 1e-12);
            }
        }
    }
}
