//! Soft TF-IDF (Cohen, Ravikumar & Fienberg, 2003).
//!
//! TF-IDF cosine requires *exact* token matches; Soft TF-IDF relaxes this
//! by letting a token match its most Jaro–Winkler-similar counterpart when
//! that similarity exceeds a threshold θ, scaling the contribution by the
//! similarity. It is the standard high-accuracy measure for noisy
//! name-like values — exactly the "somehow similar" literals of the LOD
//! periphery.
//!
//! The IDF weight is abstracted as a closure so callers can plug corpus
//! statistics ([`crate::tfidf::TfIdfWeights`]) or unit weights.

use crate::string::jaro_winkler;

/// Soft TF-IDF similarity of two token sequences in `[0, 1]`.
///
/// For every token `a` of `a_tokens` with a best partner `b` in `b_tokens`
/// such that `JW(a,b) ≥ threshold`, the score accrues
/// `w(a) · w(b) · JW(a,b)`; the total is normalised by the product of the
/// two weight-vector norms (as in TF-IDF cosine).
///
/// # Panics
/// Panics unless `threshold ∈ (0, 1]`.
pub fn soft_tfidf(
    a_tokens: &[&str],
    b_tokens: &[&str],
    mut idf: impl FnMut(&str) -> f64,
    threshold: f64,
) -> f64 {
    assert!(
        threshold > 0.0 && threshold <= 1.0,
        "threshold must be in (0, 1]"
    );
    if a_tokens.is_empty() || b_tokens.is_empty() {
        return 0.0;
    }
    let a_weights: Vec<f64> = a_tokens.iter().map(|t| idf(t).max(0.0)).collect();
    let b_weights: Vec<f64> = b_tokens.iter().map(|t| idf(t).max(0.0)).collect();
    let norm_a: f64 = a_weights.iter().map(|w| w * w).sum::<f64>().sqrt();
    let norm_b: f64 = b_weights.iter().map(|w| w * w).sum::<f64>().sqrt();
    if norm_a == 0.0 || norm_b == 0.0 {
        return 0.0;
    }
    let mut score = 0.0f64;
    for (a, wa) in a_tokens.iter().zip(&a_weights) {
        let mut best = 0.0f64;
        let mut best_w = 0.0f64;
        for (b, wb) in b_tokens.iter().zip(&b_weights) {
            let jw = jaro_winkler(a, b);
            if jw > best || (jw == best && *wb > best_w) {
                best = jw;
                best_w = *wb;
            }
        }
        if best >= threshold {
            score += wa * best_w * best;
        }
    }
    (score / (norm_a * norm_b)).clamp(0.0, 1.0)
}

/// Soft TF-IDF with unit weights — a pure "soft cosine" over tokens.
pub fn soft_cosine(a_tokens: &[&str], b_tokens: &[&str], threshold: f64) -> f64 {
    soft_tfidf(a_tokens, b_tokens, |_| 1.0, threshold)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_token_sets_score_one() {
        let t = ["vasilis", "efthymiou"];
        assert!((soft_cosine(&t, &t, 0.9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn near_tokens_still_match() {
        let a = ["vasilis", "efthymiou"];
        let b = ["vassilis", "efthimiou"]; // spelling variants
        let s = soft_cosine(&a, &b, 0.85);
        assert!(s > 0.8, "spelling variants should score high: {s}");
        // Exact cosine over the same tokens would be 0 (no common token).
    }

    #[test]
    fn unrelated_tokens_score_zero() {
        let a = ["alpha", "beta"];
        let b = ["xylophone", "quasar"];
        assert_eq!(soft_cosine(&a, &b, 0.9), 0.0);
    }

    #[test]
    fn threshold_gates_fuzzy_matches() {
        let a = ["heraklion"];
        let b = ["heraklio"];
        let loose = soft_cosine(&a, &b, 0.8);
        let strict = soft_cosine(&a, &b, 0.999);
        assert!(loose > 0.9);
        assert_eq!(strict, 0.0, "not an exact match");
    }

    #[test]
    fn idf_downweights_common_tokens() {
        // "the" is common (low IDF), "zyzzyva" rare (high IDF).
        let idf = |t: &str| if t == "the" { 0.1 } else { 3.0 };
        let a = ["the", "zyzzyva"];
        let b_shared_rare = ["a", "zyzzyva"];
        let b_shared_common = ["the", "aardvark"];
        let rare = soft_tfidf(&a, &b_shared_rare, idf, 0.9);
        let common = soft_tfidf(&a, &b_shared_common, idf, 0.9);
        assert!(
            rare > common,
            "sharing the rare token must count more: {rare} vs {common}"
        );
    }

    #[test]
    fn empty_inputs_score_zero() {
        assert_eq!(soft_cosine(&[], &["x"], 0.9), 0.0);
        assert_eq!(soft_cosine(&["x"], &[], 0.9), 0.0);
        assert_eq!(soft_cosine(&[], &[], 0.9), 0.0);
    }

    #[test]
    fn zero_weight_vector_scores_zero() {
        assert_eq!(soft_tfidf(&["a"], &["a"], |_| 0.0, 0.9), 0.0);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn bad_threshold_rejected() {
        soft_cosine(&["a"], &["a"], 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn bounded(
            a in proptest::collection::vec("[a-z]{1,8}", 0..8),
            b in proptest::collection::vec("[a-z]{1,8}", 0..8),
        ) {
            let ar: Vec<&str> = a.iter().map(|s| s.as_str()).collect();
            let br: Vec<&str> = b.iter().map(|s| s.as_str()).collect();
            let s = soft_cosine(&ar, &br, 0.9);
            prop_assert!((0.0..=1.0).contains(&s));
        }
    }
}
