//! MinHash signatures for fast Jaccard estimation.
//!
//! Web-of-Data ER regularly needs Jaccard similarity between millions of
//! token sets; exact merges are `O(|A|+|B|)` per pair. A [`MinHasher`]
//! compresses each set into a fixed-length signature whose per-position
//! agreement is an unbiased estimator of the Jaccard coefficient, turning
//! pair scoring into an `O(k)` word comparison. Used by the harness for
//! approximate candidate diagnostics and as an optional fast matcher path.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A family of `k` hash permutations over `u32` token ids.
#[derive(Clone, Debug)]
pub struct MinHasher {
    /// (multiplier, addend) pairs of the affine universal hash family.
    params: Vec<(u64, u64)>,
}

/// Large Mersenne prime for the universal hash family.
const PRIME: u64 = (1 << 61) - 1;

/// A fixed-length MinHash signature.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Signature(pub Box<[u64]>);

impl MinHasher {
    /// Creates a hasher with `k` permutations (signature length `k`),
    /// seeded deterministically.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k > 0, "signature length must be positive");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4d69_6e48);
        let params = (0..k)
            .map(|_| (rng.gen_range(1..PRIME), rng.gen_range(0..PRIME)))
            .collect();
        Self { params }
    }

    /// Signature length.
    pub fn k(&self) -> usize {
        self.params.len()
    }

    /// Computes the signature of a token set (order/duplicates irrelevant).
    /// An empty set yields the all-`u64::MAX` signature.
    pub fn signature(&self, tokens: &[u32]) -> Signature {
        let mut sig = vec![u64::MAX; self.params.len()];
        for &t in tokens {
            let x = t as u64 + 1; // avoid the fixed point at 0
            for (i, &(a, b)) in self.params.iter().enumerate() {
                // (a*x + b) mod p via u128 to avoid overflow.
                let h = ((a as u128 * x as u128 + b as u128) % PRIME as u128) as u64;
                if h < sig[i] {
                    sig[i] = h;
                }
            }
        }
        Signature(sig.into_boxed_slice())
    }

    /// Estimated Jaccard similarity of the underlying sets.
    ///
    /// # Panics
    /// Panics if the signatures came from hashers with different `k`.
    pub fn similarity(&self, a: &Signature, b: &Signature) -> f64 {
        assert_eq!(a.0.len(), b.0.len(), "signature length mismatch");
        assert_eq!(a.0.len(), self.k());
        let agree = a.0.iter().zip(b.0.iter()).filter(|(x, y)| x == y).count();
        agree as f64 / self.k() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::jaccard;

    fn set(lo: u32, hi: u32) -> Vec<u32> {
        (lo..hi).collect()
    }

    #[test]
    fn identical_sets_estimate_one() {
        let mh = MinHasher::new(64, 1);
        let s = mh.signature(&set(0, 40));
        assert_eq!(mh.similarity(&s, &s), 1.0);
    }

    #[test]
    fn disjoint_sets_estimate_near_zero() {
        let mh = MinHasher::new(128, 2);
        let a = mh.signature(&set(0, 50));
        let b = mh.signature(&set(1_000, 1_050));
        assert!(mh.similarity(&a, &b) < 0.08);
    }

    #[test]
    fn estimate_tracks_exact_jaccard() {
        let mh = MinHasher::new(256, 3);
        // 50% overlap: J = 50 / 150 = 1/3.
        let a = set(0, 100);
        let b = set(50, 150);
        let exact = jaccard(&a, &b);
        let est = mh.similarity(&mh.signature(&a), &mh.signature(&b));
        assert!(
            (est - exact).abs() < 0.1,
            "estimate {est:.3} too far from exact {exact:.3}"
        );
    }

    #[test]
    fn duplicates_and_order_do_not_matter() {
        let mh = MinHasher::new(32, 4);
        let s1 = mh.signature(&[5, 1, 9, 1, 5]);
        let s2 = mh.signature(&[1, 5, 9]);
        assert_eq!(s1, s2);
    }

    #[test]
    fn empty_sets() {
        let mh = MinHasher::new(16, 5);
        let e = mh.signature(&[]);
        assert!(e.0.iter().all(|&v| v == u64::MAX));
        // Empty vs empty agrees everywhere (degenerate, documented).
        assert_eq!(mh.similarity(&e, &e), 1.0);
    }

    #[test]
    fn deterministic_across_instances() {
        let a = MinHasher::new(64, 7).signature(&set(0, 20));
        let b = MinHasher::new(64, 7).signature(&set(0, 20));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_k_panics() {
        let _ = MinHasher::new(0, 1);
    }

    proptest::proptest! {
        #[test]
        fn estimator_within_chernoff_band(
            xs in proptest::collection::hash_set(0u32..400, 10..80),
            ys in proptest::collection::hash_set(0u32..400, 10..80),
        ) {
            let a: Vec<u32> = { let mut v: Vec<u32> = xs.into_iter().collect(); v.sort_unstable(); v };
            let b: Vec<u32> = { let mut v: Vec<u32> = ys.into_iter().collect(); v.sort_unstable(); v };
            let exact = jaccard(&a, &b);
            let mh = MinHasher::new(256, 11);
            let est = mh.similarity(&mh.signature(&a), &mh.signature(&b));
            // 256 permutations: |est − J| < 0.2 with overwhelming probability.
            proptest::prop_assert!((est - exact).abs() < 0.2, "est {est} vs exact {exact}");
        }
    }
}
