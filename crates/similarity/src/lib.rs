//! Similarity measures for entity matching.
//!
//! The matching phase of MinoanER compares entity descriptions using
//! token-set evidence (schema-agnostic, the primary signal in the Web of
//! Data) optionally combined with character-level string similarity on
//! name-like attributes. This crate provides both families:
//!
//! * [`token`] — Jaccard, Dice, overlap and cosine coefficients over sorted
//!   symbol slices, plus weighted (IDF) variants.
//! * [`string`] — Levenshtein, Jaro, Jaro–Winkler and q-gram similarity.
//! * [`tfidf`] — corpus-level document-frequency statistics producing the
//!   IDF weights used by the weighted token measures.
//! * [`hybrid`] — token × character hybrids (Monge–Elkan, soft token
//!   Jaccard) for noisy name-like values.
//! * [`minhash`] — MinHash signatures for O(k) approximate Jaccard.
//!
//! All similarities are in `[0, 1]`, higher = more similar.

#![forbid(unsafe_code)]

pub mod alignment;
pub mod hybrid;
pub mod minhash;
pub mod numeric;
pub mod simhash;
pub mod softtfidf;
pub mod string;
pub mod tfidf;
pub mod token;

pub use alignment::{needleman_wunsch, smith_waterman};
pub use hybrid::{monge_elkan, monge_elkan_symmetric, soft_token_jaccard};
pub use minhash::{MinHasher, Signature};
pub use numeric::{date_literal_similarity, numeric_literal_similarity};
pub use simhash::{simhash_similarity, SimHash};
pub use softtfidf::{soft_cosine, soft_tfidf};
pub use string::{jaro, jaro_winkler, levenshtein, levenshtein_similarity, qgram_similarity};
pub use tfidf::TfIdfWeights;
pub use token::{cosine, dice, jaccard, overlap_coefficient, weighted_jaccard};
