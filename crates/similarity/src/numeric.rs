//! Numeric and temporal value similarity.
//!
//! Cross-KB descriptions often disagree on numeric literals (populations,
//! coordinates, prices) only by measurement noise, and on dates only by
//! formatting or granularity. Token-based measures see such values as
//! totally different strings; these measures compare them on the value
//! axis instead and degrade gracefully to 0 when either side is not
//! parseable.

/// Parses a literal as a number, tolerating surrounding whitespace,
/// thousands separators (`1,234,567`) and a leading `+`.
pub fn parse_number(s: &str) -> Option<f64> {
    let cleaned: String = s.trim().replace(',', "");
    let cleaned = cleaned.strip_prefix('+').unwrap_or(&cleaned);
    if cleaned.is_empty() {
        return None;
    }
    cleaned.parse::<f64>().ok().filter(|v| v.is_finite())
}

/// Relative-distance similarity of two numbers:
/// `1 − |a−b| / max(|a|, |b|)`, clamped to `[0, 1]`; equal values (incl.
/// both zero) score 1, opposite signs score 0.
pub fn number_similarity(a: f64, b: f64) -> f64 {
    if !a.is_finite() || !b.is_finite() {
        return 0.0;
    }
    if a == b {
        return 1.0;
    }
    let denom = a.abs().max(b.abs());
    if denom == 0.0 {
        return 1.0;
    }
    (1.0 - (a - b).abs() / denom).clamp(0.0, 1.0)
}

/// Parses then compares two numeric literals; unparseable input scores 0.
pub fn numeric_literal_similarity(a: &str, b: &str) -> f64 {
    match (parse_number(a), parse_number(b)) {
        (Some(x), Some(y)) => number_similarity(x, y),
        _ => 0.0,
    }
}

/// A calendar date (proleptic Gregorian, no time component).
#[derive(Clone, Copy, PartialEq, Eq, Debug, PartialOrd, Ord)]
pub struct Date {
    /// Year (may be any i32; the similarity only uses day arithmetic).
    pub year: i32,
    /// Month, 1–12.
    pub month: u8,
    /// Day, 1–31 (validated against the month).
    pub day: u8,
}

impl Date {
    /// Days since 1970-01-01 (negative before). Standard civil-from-days
    /// inverse (Howard Hinnant's algorithm).
    pub fn days_from_epoch(&self) -> i64 {
        let y = i64::from(self.year) - i64::from(self.month <= 2);
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400;
        let mp = (i64::from(self.month) + 9) % 12;
        let doy = (153 * mp + 2) / 5 + i64::from(self.day) - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        era * 146_097 + doe - 719_468
    }
}

/// Parses `YYYY-MM-DD`, `YYYY/MM/DD`, `DD.MM.YYYY` or a bare `YYYY`
/// (mapped to July 1st so year-only values sit mid-year).
pub fn parse_date(s: &str) -> Option<Date> {
    let s = s.trim();
    let make = |y: i32, m: u32, d: u32| -> Option<Date> {
        if !(1..=12).contains(&m) {
            return None;
        }
        let leap = (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
        let dim = [
            31,
            if leap { 29 } else { 28 },
            31,
            30,
            31,
            30,
            31,
            31,
            30,
            31,
            30,
            31,
        ];
        if d == 0 || d > dim[(m - 1) as usize] {
            return None;
        }
        Some(Date {
            year: y,
            month: m as u8,
            day: d as u8,
        })
    };
    for sep in ['-', '/'] {
        let parts: Vec<&str> = s.split(sep).collect();
        if parts.len() == 3 {
            if let (Ok(y), Ok(m), Ok(d)) = (
                parts[0].parse::<i32>(),
                parts[1].parse::<u32>(),
                parts[2].parse::<u32>(),
            ) {
                return make(y, m, d);
            }
        }
    }
    let parts: Vec<&str> = s.split('.').collect();
    if parts.len() == 3 {
        if let (Ok(d), Ok(m), Ok(y)) = (
            parts[0].parse::<u32>(),
            parts[1].parse::<u32>(),
            parts[2].parse::<i32>(),
        ) {
            return make(y, m, d);
        }
    }
    if s.len() == 4 {
        if let Ok(y) = s.parse::<i32>() {
            return make(y, 7, 1);
        }
    }
    None
}

/// Exponential-decay date similarity: `exp(−|Δdays| / half_life_days ·
/// ln 2)` — a half-life of `half_life_days` days. Same day scores 1.
pub fn date_similarity(a: Date, b: Date, half_life_days: f64) -> f64 {
    assert!(half_life_days > 0.0, "half-life must be positive");
    let delta = (a.days_from_epoch() - b.days_from_epoch()).unsigned_abs() as f64;
    (-(delta / half_life_days) * std::f64::consts::LN_2).exp()
}

/// Parses then compares two date literals with a 365-day half-life;
/// unparseable input scores 0.
pub fn date_literal_similarity(a: &str, b: &str) -> f64 {
    match (parse_date(a), parse_date(b)) {
        (Some(x), Some(y)) => date_similarity(x, y, 365.0),
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_number_variants() {
        assert_eq!(parse_number("42"), Some(42.0));
        assert_eq!(parse_number(" 3.25 "), Some(3.25));
        assert_eq!(parse_number("1,234,567"), Some(1_234_567.0));
        assert_eq!(parse_number("+7"), Some(7.0));
        assert_eq!(parse_number("-2.5e3"), Some(-2500.0));
        assert_eq!(parse_number("abc"), None);
        assert_eq!(parse_number(""), None);
        assert_eq!(parse_number("inf"), None, "non-finite rejected");
    }

    #[test]
    fn number_similarity_properties() {
        assert_eq!(number_similarity(5.0, 5.0), 1.0);
        assert_eq!(number_similarity(0.0, 0.0), 1.0);
        assert!((number_similarity(100.0, 90.0) - 0.9).abs() < 1e-12);
        assert_eq!(number_similarity(1.0, -1.0), 0.0);
        assert_eq!(number_similarity(f64::NAN, 1.0), 0.0);
    }

    #[test]
    fn numeric_literal_similarity_end_to_end() {
        assert!((numeric_literal_similarity("1,000", "900") - 0.9).abs() < 1e-12);
        assert_eq!(numeric_literal_similarity("x", "1"), 0.0);
    }

    #[test]
    fn parse_date_formats() {
        let d = Date {
            year: 2016,
            month: 3,
            day: 15,
        };
        assert_eq!(parse_date("2016-03-15"), Some(d));
        assert_eq!(parse_date("2016/03/15"), Some(d));
        assert_eq!(parse_date("15.03.2016"), Some(d));
        assert_eq!(
            parse_date("2016"),
            Some(Date {
                year: 2016,
                month: 7,
                day: 1
            })
        );
        assert_eq!(parse_date("2016-13-01"), None, "month 13");
        assert_eq!(parse_date("2015-02-29"), None, "not a leap year");
        assert_eq!(
            parse_date("2016-02-29"),
            Some(Date {
                year: 2016,
                month: 2,
                day: 29
            })
        );
        assert_eq!(parse_date("nonsense"), None);
    }

    #[test]
    fn epoch_days_known_values() {
        assert_eq!(
            Date {
                year: 1970,
                month: 1,
                day: 1
            }
            .days_from_epoch(),
            0
        );
        assert_eq!(
            Date {
                year: 1970,
                month: 1,
                day: 2
            }
            .days_from_epoch(),
            1
        );
        assert_eq!(
            Date {
                year: 1969,
                month: 12,
                day: 31
            }
            .days_from_epoch(),
            -1
        );
        assert_eq!(
            Date {
                year: 2000,
                month: 3,
                day: 1
            }
            .days_from_epoch(),
            11_017
        );
    }

    #[test]
    fn date_similarity_decay() {
        let a = Date {
            year: 2016,
            month: 1,
            day: 1,
        };
        let same = date_similarity(a, a, 365.0);
        assert!((same - 1.0).abs() < 1e-12);
        let b = Date {
            year: 2017,
            month: 1,
            day: 1,
        };
        let one_year = date_similarity(a, b, 365.0);
        assert!(
            (one_year - 0.5).abs() < 0.01,
            "one half-life ≈ 0.5: {one_year}"
        );
        let c = Date {
            year: 2018,
            month: 1,
            day: 1,
        };
        assert!(date_similarity(a, c, 365.0) < one_year);
    }

    #[test]
    fn date_literal_similarity_cross_format() {
        let s = date_literal_similarity("2016-03-15", "15.03.2016");
        assert!((s - 1.0).abs() < 1e-12, "same date, different format: {s}");
        assert_eq!(date_literal_similarity("2016-03-15", "garbage"), 0.0);
    }

    #[test]
    #[should_panic(expected = "half-life")]
    fn zero_half_life_rejected() {
        let d = Date {
            year: 2016,
            month: 1,
            day: 1,
        };
        date_similarity(d, d, 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn number_similarity_bounded_and_symmetric(a in -1e9f64..1e9, b in -1e9f64..1e9) {
            let s = number_similarity(a, b);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!((s - number_similarity(b, a)).abs() < 1e-12);
        }

        #[test]
        fn date_round_trip_through_epoch(y in 1800i32..2200, m in 1u32..13, d in 1u32..29) {
            let date = parse_date(&format!("{y:04}-{m:02}-{d:02}")).unwrap();
            // Adjacent days differ by exactly one epoch day.
            let next = Date { day: date.day + 1, ..date };
            if parse_date(&format!("{y:04}-{m:02}-{:02}", d + 1)).is_some() {
                prop_assert_eq!(next.days_from_epoch() - date.days_from_epoch(), 1);
            }
        }
    }
}
