//! Sequence-alignment similarities.
//!
//! Edit distance (Levenshtein) penalises every difference equally;
//! alignment scores let matches *reward* and can ignore unrelated flanking
//! text. Both are classic record-linkage measures:
//!
//! * [`needleman_wunsch`] — global alignment: the whole of both strings
//!   must align (good for names that are entirely variants of each other).
//! * [`smith_waterman`] — local alignment: the best-scoring *substring*
//!   pair (good when one value embeds the other, e.g. "Heraklion" inside
//!   "Municipality of Heraklion, Crete").
//!
//! Scores use match = +2, mismatch = −1, gap = −1 (standard record-linkage
//! parameters) and are normalised to `[0, 1]` by the maximum attainable
//! score (`2 · min(|a|, |b|)`).

const MATCH: i32 = 2;
const MISMATCH: i32 = -1;
const GAP: i32 = -1;

/// Global-alignment similarity in `[0, 1]`; 1 iff the strings are equal
/// (case-sensitive). Empty vs non-empty scores 0; two empties score 1.
pub fn needleman_wunsch(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let (n, m) = (a.len(), b.len());
    // Two-row DP over the alignment score.
    let mut prev: Vec<i32> = (0..=m as i32).map(|j| j * GAP).collect();
    let mut cur = vec![0i32; m + 1];
    for i in 1..=n {
        cur[0] = i as i32 * GAP;
        for j in 1..=m {
            let diag = prev[j - 1]
                + if a[i - 1] == b[j - 1] {
                    MATCH
                } else {
                    MISMATCH
                };
            cur[j] = diag.max(prev[j] + GAP).max(cur[j - 1] + GAP);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let score = prev[m];
    let max = MATCH * n.min(m) as i32;
    (score.max(0) as f64 / max as f64).clamp(0.0, 1.0)
}

/// Local-alignment similarity in `[0, 1]`: the best-scoring substring
/// alignment, normalised by `2 · min(|a|, |b|)`. Reaches 1 when the
/// shorter string appears verbatim inside the longer one.
pub fn smith_waterman(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let (n, m) = (a.len(), b.len());
    let mut prev = vec![0i32; m + 1];
    let mut cur = vec![0i32; m + 1];
    let mut best = 0i32;
    for i in 1..=n {
        cur[0] = 0;
        for j in 1..=m {
            let diag = prev[j - 1]
                + if a[i - 1] == b[j - 1] {
                    MATCH
                } else {
                    MISMATCH
                };
            cur[j] = 0.max(diag).max(prev[j] + GAP).max(cur[j - 1] + GAP);
            if cur[j] > best {
                best = cur[j];
            }
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let max = MATCH * n.min(m) as i32;
    (best as f64 / max as f64).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings_score_one() {
        assert!((needleman_wunsch("heraklion", "heraklion") - 1.0).abs() < 1e-12);
        assert!((smith_waterman("heraklion", "heraklion") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_strings_score_zero() {
        assert_eq!(needleman_wunsch("aaaa", "bbbb"), 0.0);
        assert_eq!(smith_waterman("aaaa", "bbbb"), 0.0);
    }

    #[test]
    fn empties() {
        assert_eq!(needleman_wunsch("", ""), 1.0);
        assert_eq!(needleman_wunsch("", "x"), 0.0);
        assert_eq!(smith_waterman("", ""), 1.0);
        assert_eq!(smith_waterman("x", ""), 0.0);
    }

    #[test]
    fn local_alignment_finds_embedded_substring() {
        let sw = smith_waterman("heraklion", "municipality of heraklion crete");
        assert!(
            (sw - 1.0).abs() < 1e-12,
            "embedded name should score 1: {sw}"
        );
        // Global alignment is dragged down by the flanking text.
        let nw = needleman_wunsch("heraklion", "municipality of heraklion crete");
        assert!(nw < sw, "nw {nw} should trail sw {sw}");
    }

    #[test]
    fn single_typo_scores_high_but_below_one() {
        let nw = needleman_wunsch("heraklion", "heraklio");
        assert!(nw > 0.8 && nw < 1.0, "nw = {nw}");
        let sw = smith_waterman("heraklion", "heraklio");
        assert!(sw > 0.8, "sw = {sw}");
    }

    #[test]
    fn symmetric() {
        for (a, b) in [
            ("abc", "abd"),
            ("hello", "hallo"),
            ("short", "a much longer value"),
        ] {
            assert!((needleman_wunsch(a, b) - needleman_wunsch(b, a)).abs() < 1e-12);
            assert!((smith_waterman(a, b) - smith_waterman(b, a)).abs() < 1e-12);
        }
    }

    #[test]
    fn local_at_least_global() {
        for (a, b) in [
            ("abcdef", "xxabcdxx"),
            ("kostas", "konstantinos"),
            ("ab", "ba"),
        ] {
            assert!(
                smith_waterman(a, b) + 1e-12 >= needleman_wunsch(a, b),
                "{a} vs {b}"
            );
        }
    }

    #[test]
    fn unicode_handled_per_char() {
        assert!((needleman_wunsch("héllo", "héllo") - 1.0).abs() < 1e-12);
        assert!(needleman_wunsch("héllo", "hello") > 0.5);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn scores_in_unit_interval(a in "[a-z]{0,20}", b in "[a-z]{0,20}") {
            let nw = needleman_wunsch(&a, &b);
            let sw = smith_waterman(&a, &b);
            prop_assert!((0.0..=1.0).contains(&nw));
            prop_assert!((0.0..=1.0).contains(&sw));
            prop_assert!(sw + 1e-12 >= nw, "local must dominate global");
        }

        #[test]
        fn identity_scores_one(a in "[a-z]{1,20}") {
            prop_assert!((needleman_wunsch(&a, &a) - 1.0).abs() < 1e-12);
            prop_assert!((smith_waterman(&a, &a) - 1.0).abs() < 1e-12);
        }
    }
}
