//! Hybrid (token × character) similarity.
//!
//! Name-like values in the Web of Data mix token-level variation (word
//! order, abbreviations, extra words) with character-level noise (typos,
//! transliteration). Hybrid measures handle both at once:
//!
//! * [`monge_elkan`] — for each token of `a`, the best character-level
//!   match among `b`'s tokens, averaged (asymmetric; see
//!   [`monge_elkan_symmetric`]).
//! * [`soft_token_jaccard`] — Jaccard over tokens where two tokens count
//!   as equal when their character similarity exceeds a threshold
//!   ("soft" set intersection).

use crate::string::jaro_winkler;

fn tokens(s: &str) -> Vec<&str> {
    s.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .collect()
}

/// Monge–Elkan similarity of `a` against `b` using Jaro–Winkler as the
/// internal measure: `mean_{ta ∈ a} max_{tb ∈ b} jw(ta, tb)`.
/// Empty-token inputs yield 0.
pub fn monge_elkan(a: &str, b: &str) -> f64 {
    let (ta, tb) = (tokens(a), tokens(b));
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for x in &ta {
        let best = tb
            .iter()
            .map(|y| jaro_winkler(&x.to_lowercase(), &y.to_lowercase()))
            .fold(0.0f64, f64::max);
        total += best;
    }
    total / ta.len() as f64
}

/// Symmetrised Monge–Elkan: `(me(a,b) + me(b,a)) / 2`.
pub fn monge_elkan_symmetric(a: &str, b: &str) -> f64 {
    (monge_elkan(a, b) + monge_elkan(b, a)) / 2.0
}

/// Soft token Jaccard: tokens match when their Jaro–Winkler similarity is
/// ≥ `threshold`; each token may be used in at most one match (greedy,
/// highest-similarity first), and the coefficient is
/// `matches / (|A| + |B| − matches)`.
pub fn soft_token_jaccard(a: &str, b: &str, threshold: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&threshold),
        "threshold must be in [0,1]"
    );
    let (ta, tb) = (tokens(a), tokens(b));
    if ta.is_empty() && tb.is_empty() {
        return 0.0;
    }
    // Score all cross pairs, then greedily take the best disjoint ones.
    let mut scored: Vec<(f64, usize, usize)> = Vec::new();
    for (i, x) in ta.iter().enumerate() {
        for (j, y) in tb.iter().enumerate() {
            let s = jaro_winkler(&x.to_lowercase(), &y.to_lowercase());
            if s >= threshold {
                scored.push((s, i, j));
            }
        }
    }
    scored.sort_by(|p, q| {
        q.0.partial_cmp(&p.0)
            .expect("hybrid token scores are finite by construction")
            .then(p.1.cmp(&q.1).then(p.2.cmp(&q.2)))
    });
    let mut used_a = vec![false; ta.len()];
    let mut used_b = vec![false; tb.len()];
    let mut matches = 0usize;
    for (_, i, j) in scored {
        if !used_a[i] && !used_b[j] {
            used_a[i] = true;
            used_b[j] = true;
            matches += 1;
        }
    }
    matches as f64 / (ta.len() + tb.len() - matches) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monge_elkan_handles_reordering_and_typos() {
        let s = monge_elkan_symmetric("Mikis Theodorakis", "Theodorakis, Mikis");
        assert!(s > 0.95, "word order should not matter much: {s}");
        let s = monge_elkan_symmetric("Knossos Palace", "Knosos Palac");
        assert!(s > 0.9, "minor typos should barely hurt: {s}");
    }

    #[test]
    fn monge_elkan_asymmetry_is_bounded_by_symmetric() {
        let (a, b) = ("john smith", "john smith archaeologist");
        let me_ab = monge_elkan(a, b);
        let me_ba = monge_elkan(b, a);
        let sym = monge_elkan_symmetric(a, b);
        assert!(me_ab > me_ba, "subset direction should score higher");
        assert!((sym - (me_ab + me_ba) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn monge_elkan_empty_inputs() {
        assert_eq!(monge_elkan("", "x"), 0.0);
        assert_eq!(monge_elkan("x", ""), 0.0);
        assert_eq!(monge_elkan_symmetric("", ""), 0.0);
    }

    #[test]
    fn soft_jaccard_exact_and_soft() {
        assert_eq!(soft_token_jaccard("a b c", "a b c", 1.0), 1.0);
        assert_eq!(soft_token_jaccard("aa bb", "cc dd", 0.95), 0.0);
        // "knosos" ≈ "knossos" above 0.9: soft match bridges the typo.
        let strict = soft_token_jaccard("knossos palace", "knosos palace", 1.0);
        let soft = soft_token_jaccard("knossos palace", "knosos palace", 0.9);
        assert!(soft > strict);
        assert_eq!(soft, 1.0);
    }

    #[test]
    fn soft_jaccard_each_token_used_once() {
        // One "aa" in a must not match both "aa" tokens in b.
        let s = soft_token_jaccard("aa", "aa aa", 1.0);
        assert!((s - 0.5).abs() < 1e-12, "got {s}");
    }

    #[test]
    fn soft_jaccard_empty() {
        assert_eq!(soft_token_jaccard("", "", 0.9), 0.0);
        assert_eq!(soft_token_jaccard("a", "", 0.9), 0.0);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn bad_threshold_panics() {
        let _ = soft_token_jaccard("a", "b", 1.5);
    }

    proptest::proptest! {
        #[test]
        fn hybrid_measures_bounded_and_symmetricised(a in "[a-z ]{0,24}", b in "[a-z ]{0,24}") {
            let me = monge_elkan_symmetric(&a, &b);
            proptest::prop_assert!((0.0..=1.0 + 1e-9).contains(&me));
            proptest::prop_assert!((me - monge_elkan_symmetric(&b, &a)).abs() < 1e-12);
            let sj = soft_token_jaccard(&a, &b, 0.9);
            proptest::prop_assert!((0.0..=1.0 + 1e-9).contains(&sj));
            proptest::prop_assert!((sj - soft_token_jaccard(&b, &a, 0.9)).abs() < 1e-9);
        }
    }
}
