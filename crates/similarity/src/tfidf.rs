//! Corpus-level token statistics (document frequency → IDF weights).
//!
//! The weighted token measures need to know how *informative* each token
//! is. [`TfIdfWeights`] is built once over all entity descriptions (each
//! description = one document) and then shared by the matcher.

use minoan_common::FxHashMap;

/// Inverse-document-frequency weights over an interned token vocabulary.
#[derive(Clone, Debug)]
pub struct TfIdfWeights {
    /// Document frequency per token id (dense vector over the interner).
    doc_freq: Vec<u32>,
    /// Number of documents observed.
    num_docs: u32,
}

impl TfIdfWeights {
    /// Builds weights from an iterator of documents, each a (possibly
    /// unsorted, possibly duplicated) token-id list. `vocab_size` must be at
    /// least `max(token id) + 1`.
    pub fn build<I, D>(vocab_size: usize, docs: I) -> Self
    where
        I: IntoIterator<Item = D>,
        D: AsRef<[u32]>,
    {
        let mut doc_freq = vec![0u32; vocab_size];
        let mut num_docs = 0u32;
        let mut seen: FxHashMap<u32, u32> = FxHashMap::default(); // token -> doc generation
        for doc in docs {
            num_docs += 1;
            for &t in doc.as_ref() {
                let gen = seen.entry(t).or_insert(0);
                if *gen != num_docs {
                    *gen = num_docs;
                    doc_freq[t as usize] += 1;
                }
            }
        }
        Self { doc_freq, num_docs }
    }

    /// Number of documents the statistics were computed over.
    pub fn num_docs(&self) -> u32 {
        self.num_docs
    }

    /// Document frequency of token `t` (0 for unseen/out-of-range ids).
    pub fn doc_freq(&self, t: u32) -> u32 {
        self.doc_freq.get(t as usize).copied().unwrap_or(0)
    }

    /// Smoothed IDF weight `ln(1 + N / (1 + df))`, ≥ 0, monotonically
    /// decreasing in document frequency.
    pub fn idf(&self, t: u32) -> f64 {
        let df = self.doc_freq(t) as f64;
        (1.0 + self.num_docs as f64 / (1.0 + df)).ln()
    }

    /// TF-IDF cosine similarity between two canonical (sorted+deduped)
    /// token slices, treating each as a binary-TF document vector.
    pub fn cosine(&self, a: &[u32], b: &[u32]) -> f64 {
        let norm =
            |xs: &[u32]| -> f64 { xs.iter().map(|&t| self.idf(t).powi(2)).sum::<f64>().sqrt() };
        let (na, nb) = (norm(a), norm(b));
        if na == 0.0 || nb == 0.0 {
            return 0.0;
        }
        let (mut i, mut j, mut dot) = (0usize, 0usize, 0.0f64);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    dot += self.idf(a[i]).powi(2);
                    i += 1;
                    j += 1;
                }
            }
        }
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weights() -> TfIdfWeights {
        // Token 0 appears in every doc, token 1 in one, token 2 in two.
        TfIdfWeights::build(4, [vec![0, 1], vec![0, 2], vec![0, 2, 2], vec![0]])
    }

    #[test]
    fn doc_freq_counts_documents_not_occurrences() {
        let w = weights();
        assert_eq!(w.num_docs(), 4);
        assert_eq!(w.doc_freq(0), 4);
        assert_eq!(w.doc_freq(1), 1);
        assert_eq!(w.doc_freq(2), 2, "duplicate within a doc counts once");
        assert_eq!(w.doc_freq(3), 0);
        assert_eq!(w.doc_freq(99), 0, "out of range is zero");
    }

    #[test]
    fn idf_decreases_with_frequency() {
        let w = weights();
        assert!(w.idf(1) > w.idf(2));
        assert!(w.idf(2) > w.idf(0));
        assert!(w.idf(0) > 0.0);
    }

    #[test]
    fn cosine_identity_and_disjoint() {
        let w = weights();
        assert!((w.cosine(&[0, 1], &[0, 1]) - 1.0).abs() < 1e-12);
        assert_eq!(w.cosine(&[1], &[2]), 0.0);
        assert_eq!(w.cosine(&[], &[1]), 0.0);
    }

    #[test]
    fn rare_shared_token_scores_higher() {
        let w = weights();
        // Sharing rare token 1 vs sharing ubiquitous token 0, same set sizes.
        let rare = w.cosine(&[1, 2], &[0, 1]);
        let common = w.cosine(&[0, 2], &[0, 1]);
        assert!(rare > common, "rare {rare} vs common {common}");
    }

    #[test]
    fn empty_corpus_is_safe() {
        let w = TfIdfWeights::build(0, Vec::<Vec<u32>>::new());
        assert_eq!(w.num_docs(), 0);
        assert_eq!(w.cosine(&[], &[]), 0.0);
        assert!(w.idf(5) >= 0.0);
    }
}
