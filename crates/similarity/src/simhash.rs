//! SimHash: 64-bit similarity-preserving fingerprints.
//!
//! Charikar's SimHash maps a weighted token set to a single 64-bit
//! fingerprint whose Hamming distance tracks the cosine similarity of the
//! underlying sets. Next to MinHash (estimates Jaccard with `k` words)
//! SimHash trades accuracy for a single-word footprint — useful as a cheap
//! first-pass filter before exact similarity, and as a compact description
//! digest in the incremental resolver.

use minoan_common::hash::fx_hash_bytes;

/// A 64-bit SimHash fingerprint.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SimHash(pub u64);

impl SimHash {
    /// Fingerprints a token sequence with unit weights.
    pub fn of_tokens<'a>(tokens: impl IntoIterator<Item = &'a str>) -> Self {
        Self::of_weighted(tokens.into_iter().map(|t| (t, 1.0)))
    }

    /// Fingerprints weighted tokens: each token's 64-bit hash votes its
    /// weight on every bit position; the sign of the tally decides the bit.
    pub fn of_weighted<'a>(tokens: impl IntoIterator<Item = (&'a str, f64)>) -> Self {
        let mut tally = [0.0f64; 64];
        for (token, weight) in tokens {
            let h = fx_hash_bytes(token.as_bytes());
            for (bit, t) in tally.iter_mut().enumerate() {
                if h >> bit & 1 == 1 {
                    *t += weight;
                } else {
                    *t -= weight;
                }
            }
        }
        let mut out = 0u64;
        for (bit, &t) in tally.iter().enumerate() {
            if t > 0.0 {
                out |= 1 << bit;
            }
        }
        SimHash(out)
    }

    /// Hamming distance to another fingerprint (0–64).
    #[inline]
    pub fn hamming(self, other: SimHash) -> u32 {
        (self.0 ^ other.0).count_ones()
    }

    /// Hamming similarity `1 − distance/64` in `[0, 1]`.
    #[inline]
    pub fn similarity(self, other: SimHash) -> f64 {
        1.0 - f64::from(self.hamming(other)) / 64.0
    }
}

/// Convenience: fingerprint similarity of two token slices.
pub fn simhash_similarity<'a>(
    a: impl IntoIterator<Item = &'a str>,
    b: impl IntoIterator<Item = &'a str>,
) -> f64 {
    SimHash::of_tokens(a).similarity(SimHash::of_tokens(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC_A: [&str; 6] = ["red", "wine", "from", "crete", "greece", "vineyard"];
    const DOC_B: [&str; 6] = ["red", "wine", "from", "crete", "hellas", "vineyard"];
    const DOC_C: [&str; 6] = ["quantum", "flux", "torsion", "manifold", "spinor", "gauge"];

    #[test]
    fn identical_sets_have_zero_distance() {
        let a = SimHash::of_tokens(DOC_A);
        let b = SimHash::of_tokens(DOC_A);
        assert_eq!(a.hamming(b), 0);
        assert_eq!(a.similarity(b), 1.0);
    }

    #[test]
    fn near_duplicates_closer_than_unrelated() {
        let a = SimHash::of_tokens(DOC_A);
        let b = SimHash::of_tokens(DOC_B);
        let c = SimHash::of_tokens(DOC_C);
        assert!(
            a.hamming(b) < a.hamming(c),
            "near-dup distance {} should beat unrelated {}",
            a.hamming(b),
            a.hamming(c)
        );
    }

    #[test]
    fn order_invariant() {
        let a = SimHash::of_tokens(["x", "y", "z"]);
        let b = SimHash::of_tokens(["z", "x", "y"]);
        assert_eq!(a, b);
    }

    #[test]
    fn weights_shift_the_fingerprint() {
        let unit = SimHash::of_weighted([("alpha", 1.0), ("beta", 1.0)]);
        let skewed = SimHash::of_weighted([("alpha", 10.0), ("beta", 1.0)]);
        let alpha_only = SimHash::of_tokens(["alpha"]);
        assert!(skewed.hamming(alpha_only) <= unit.hamming(alpha_only));
    }

    #[test]
    fn empty_set_is_zero() {
        let e = SimHash::of_tokens(std::iter::empty::<&str>());
        assert_eq!(e.0, 0);
    }

    #[test]
    fn similarity_helper_matches_manual() {
        let s = simhash_similarity(DOC_A, DOC_B);
        let manual = SimHash::of_tokens(DOC_A).similarity(SimHash::of_tokens(DOC_B));
        assert_eq!(s, manual);
        assert!((0.0..=1.0).contains(&s));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn similarity_bounded_and_symmetric(
            a in proptest::collection::vec("[a-z]{1,8}", 0..20),
            b in proptest::collection::vec("[a-z]{1,8}", 0..20),
        ) {
            let ha = SimHash::of_tokens(a.iter().map(|s| s.as_str()));
            let hb = SimHash::of_tokens(b.iter().map(|s| s.as_str()));
            let s = ha.similarity(hb);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert_eq!(ha.hamming(hb), hb.hamming(ha));
        }
    }
}
