//! Progressive quality curves from a resolution trace.
//!
//! The paper's benefit dimensions are evaluated *as a function of consumed
//! budget*: a progressive method should deliver most of its final quality
//! early. Curves are computed by replaying the trace and sampling
//! checkpoints.
//!
//! Quality-dimension definitions (only *correct* merges count — a false
//! merge must not inflate quality):
//!
//! * **recall / precision** — standard, over emitted matches so far;
//! * **attribute completeness** — per matchable world entity, the fraction
//!   of its full (cluster-union) attribute vocabulary covered by its best
//!   resolved component, averaged; unresolved entities contribute their
//!   best single description's coverage;
//! * **entity coverage** — fraction of matchable world entities with at
//!   least one correct resolved pair;
//! * **relationship completeness** — fraction of matchable world links
//!   whose *both* endpoint entities are covered.

use minoan_common::{FxHashSet, UnionFind};
use minoan_datagen::GroundTruth;
use minoan_er::Trace;
use minoan_rdf::{Dataset, EntityId};

/// One checkpoint of the progressive curves.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CurvePoint {
    /// Comparisons consumed at this checkpoint.
    pub comparisons: u64,
    /// Recall of emitted matches so far.
    pub recall: f64,
    /// Precision of emitted matches so far.
    pub precision: f64,
    /// Attribute completeness (see module docs).
    pub attr_completeness: f64,
    /// Entity coverage.
    pub entity_coverage: f64,
    /// Relationship completeness.
    pub rel_completeness: f64,
}

/// Computes progressive curves with ~`num_points` checkpoints (plus the
/// origin and the final state).
pub fn progressive_curves(
    dataset: &Dataset,
    truth: &GroundTruth,
    trace: &Trace,
    num_points: usize,
) -> Vec<CurvePoint> {
    let num_points = num_points.max(1);
    let total = trace.comparisons();
    let stride = (total / num_points as u64).max(1);

    // Per-description attribute sets and per-world-entity unions.
    let attrs_of: Vec<FxHashSet<u32>> = (0..dataset.len() as u32)
        .map(|e| {
            dataset
                .description(EntityId(e))
                .attributes
                .iter()
                .map(|(p, _)| p.0)
                .collect()
        })
        .collect();
    let matchable: Vec<u32> = (0..truth.num_world_entities() as u32)
        .filter(|&w| truth.cluster(w).len() >= 2)
        .collect();
    let full_attrs: Vec<usize> = matchable
        .iter()
        .map(|&w| {
            let mut u: FxHashSet<u32> = FxHashSet::default();
            for &d in truth.cluster(w) {
                u.extend(&attrs_of[d.index()]);
            }
            u.len()
        })
        .collect();

    let mut uf = UnionFind::new(dataset.len());
    let mut tp = 0u64;
    let mut emitted = 0u64;
    let mut points = Vec::with_capacity(num_points + 2);
    points.push(checkpoint(
        0,
        truth,
        &matchable,
        &full_attrs,
        &attrs_of,
        &mut uf,
        0,
        0,
    ));

    let steps = trace.steps();
    let mut next_checkpoint = stride;
    for (i, step) in steps.iter().enumerate() {
        if step.matched {
            emitted += 1;
            let (a, b) = step.pair();
            if truth.is_match(a, b) {
                tp += 1;
                uf.union(a.0, b.0);
            }
        }
        let is_last = i + 1 == steps.len();
        if step.comparison >= next_checkpoint || is_last {
            points.push(checkpoint(
                step.comparison,
                truth,
                &matchable,
                &full_attrs,
                &attrs_of,
                &mut uf,
                tp,
                emitted,
            ));
            next_checkpoint = step.comparison + stride;
        }
    }
    points
}

#[allow(clippy::too_many_arguments)]
fn checkpoint(
    comparisons: u64,
    truth: &GroundTruth,
    matchable: &[u32],
    full_attrs: &[usize],
    attrs_of: &[FxHashSet<u32>],
    uf: &mut UnionFind,
    tp: u64,
    emitted: u64,
) -> CurvePoint {
    let mut covered = vec![false; truth.num_world_entities()];
    let mut ac_sum = 0.0;
    for (mi, &w) in matchable.iter().enumerate() {
        let cluster = truth.cluster(w);
        // Group members by resolved root.
        let mut best_cov = 0usize;
        let mut groups: minoan_common::FxHashMap<u32, FxHashSet<u32>> =
            minoan_common::FxHashMap::default();
        let mut any_pair = false;
        let mut sizes: minoan_common::FxHashMap<u32, usize> = minoan_common::FxHashMap::default();
        for &d in cluster {
            let root = uf.find(d.0);
            let g = groups.entry(root).or_default();
            g.extend(&attrs_of[d.index()]);
            let s = sizes.entry(root).or_insert(0);
            *s += 1;
            if *s >= 2 {
                any_pair = true;
            }
        }
        // lint:allow(hash-order-leak): max over group sizes is order-insensitive
        for g in groups.values() {
            best_cov = best_cov.max(g.len());
        }
        if full_attrs[mi] > 0 {
            ac_sum += best_cov as f64 / full_attrs[mi] as f64;
        }
        covered[w as usize] = any_pair;
    }
    let ac = if matchable.is_empty() {
        0.0
    } else {
        ac_sum / matchable.len() as f64
    };
    let ec = if matchable.is_empty() {
        0.0
    } else {
        matchable.iter().filter(|&&w| covered[w as usize]).count() as f64 / matchable.len() as f64
    };
    let total_links = truth.matchable_links();
    let rc = if total_links == 0 {
        0.0
    } else {
        truth
            .world_links()
            .iter()
            .filter(|&&(a, b)| {
                truth.cluster(a).len() >= 2
                    && truth.cluster(b).len() >= 2
                    && covered[a as usize]
                    && covered[b as usize]
            })
            .count() as f64
            / total_links as f64
    };
    CurvePoint {
        comparisons,
        recall: if truth.matching_pairs() == 0 {
            0.0
        } else {
            tp as f64 / truth.matching_pairs() as f64
        },
        precision: if emitted == 0 {
            0.0
        } else {
            tp as f64 / emitted as f64
        },
        attr_completeness: ac,
        entity_coverage: ec,
        rel_completeness: rc,
    }
}

/// Normalised area under the recall curve (mean recall over the consumed
/// budget) — the scalar summary of progressiveness.
pub fn recall_auc(points: &[CurvePoint]) -> f64 {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .map(|p| (p.comparisons as f64, p.recall))
        .collect();
    minoan_common::stats::normalized_step_auc(&pts)
}

/// Normalised AUC of an arbitrary dimension selected by `f`.
pub fn dimension_auc(points: &[CurvePoint], f: impl Fn(&CurvePoint) -> f64) -> f64 {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .map(|p| (p.comparisons as f64, f(p)))
        .collect();
    minoan_common::stats::normalized_step_auc(&pts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minoan_blocking::{builders, ErMode};
    use minoan_datagen::{generate, profiles};
    use minoan_er::{Matcher, MatcherConfig, ProgressiveResolver, ResolverConfig, Strategy};
    use minoan_metablocking::{prune, BlockingGraph, WeightingScheme};

    fn run(g: &minoan_datagen::GeneratedWorld, strategy: Strategy) -> minoan_er::Resolution {
        let blocks = builders::token_blocking(&g.dataset, ErMode::CleanClean);
        let cleaned = minoan_blocking::filter::clean(&blocks);
        let graph = BlockingGraph::build(&cleaned);
        let pairs: Vec<_> = prune::wnp(&graph, WeightingScheme::Arcs, false)
            .pairs
            .into_iter()
            .map(|p| (p.a, p.b, p.weight))
            .collect();
        let matcher = Matcher::new(&g.dataset, MatcherConfig::default());
        ProgressiveResolver::new(
            &g.dataset,
            matcher,
            ResolverConfig {
                strategy,
                ..Default::default()
            },
        )
        .run(&pairs)
    }

    #[test]
    fn curves_are_monotone_and_bounded() {
        let g = generate(&profiles::center_dense(120, 8));
        let res = run(
            &g,
            Strategy::Progressive(minoan_er::BenefitModel::PairQuantity),
        );
        let pts = progressive_curves(&g.dataset, &g.truth, &res.trace, 15);
        assert!(pts.len() >= 2);
        assert_eq!(pts[0].comparisons, 0);
        for w in pts.windows(2) {
            assert!(w[1].comparisons >= w[0].comparisons);
            assert!(
                w[1].recall + 1e-12 >= w[0].recall,
                "recall must be monotone"
            );
            assert!(w[1].entity_coverage + 1e-12 >= w[0].entity_coverage);
            assert!(w[1].attr_completeness + 1e-12 >= w[0].attr_completeness);
            assert!(w[1].rel_completeness + 1e-12 >= w[0].rel_completeness);
        }
        for p in &pts {
            for v in [
                p.recall,
                p.precision,
                p.attr_completeness,
                p.entity_coverage,
                p.rel_completeness,
            ] {
                assert!((0.0..=1.0 + 1e-9).contains(&v));
            }
        }
        let last = pts.last().unwrap();
        assert!(last.recall > 0.5, "final recall too low: {}", last.recall);
        assert!(last.entity_coverage > 0.5);
    }

    #[test]
    fn attribute_completeness_starts_above_zero() {
        // Before any match, each entity is covered by its best single
        // description — non-zero coverage.
        let g = generate(&profiles::center_dense(80, 9));
        let res = run(
            &g,
            Strategy::Progressive(minoan_er::BenefitModel::PairQuantity),
        );
        let pts = progressive_curves(&g.dataset, &g.truth, &res.trace, 5);
        assert!(pts[0].attr_completeness > 0.2);
        assert_eq!(pts[0].entity_coverage, 0.0);
        assert_eq!(pts[0].recall, 0.0);
    }

    #[test]
    fn progressive_auc_beats_random() {
        let g = generate(&profiles::center_dense(160, 10));
        let prog = run(
            &g,
            Strategy::Progressive(minoan_er::BenefitModel::PairQuantity),
        );
        let rand = run(&g, Strategy::Random { seed: 3 });
        let prog_pts = progressive_curves(&g.dataset, &g.truth, &prog.trace, 20);
        let rand_pts = progressive_curves(&g.dataset, &g.truth, &rand.trace, 20);
        assert!(
            recall_auc(&prog_pts) > recall_auc(&rand_pts) + 0.05,
            "progressive {} vs random {}",
            recall_auc(&prog_pts),
            recall_auc(&rand_pts)
        );
    }

    #[test]
    fn false_merges_do_not_inflate_quality() {
        // A trace of only-false matches must leave all quality dims at the
        // unresolved baseline.
        let g = generate(&profiles::center_dense(60, 11));
        let mut trace = minoan_er::Trace::new();
        let kb0: Vec<_> = g.dataset.entities_of_kb(minoan_rdf::KbId(0)).to_vec();
        for (i, w) in kb0.windows(2).take(10).enumerate() {
            trace.push(minoan_er::TraceStep {
                comparison: (i + 1) as u64,
                a: w[0].0,
                b: w[1].0,
                value_similarity: 0.9,
                score: 0.9,
                benefit: 1.0,
                matched: true,
                discovered: false,
            });
        }
        let pts = progressive_curves(&g.dataset, &g.truth, &trace, 5);
        let last = pts.last().unwrap();
        assert_eq!(last.recall, 0.0);
        assert_eq!(last.entity_coverage, 0.0);
        assert_eq!(last.rel_completeness, 0.0);
        assert_eq!(last.precision, 0.0);
    }

    #[test]
    fn dimension_auc_selector_works() {
        let g = generate(&profiles::center_dense(80, 12));
        let res = run(
            &g,
            Strategy::Progressive(minoan_er::BenefitModel::EntityCoverage),
        );
        let pts = progressive_curves(&g.dataset, &g.truth, &res.trace, 10);
        let ec = dimension_auc(&pts, |p| p.entity_coverage);
        let rc = dimension_auc(&pts, |p| p.rel_completeness);
        assert!(ec > 0.0);
        assert!(rc >= 0.0);
        assert!((recall_auc(&pts) - dimension_auc(&pts, |p| p.recall)).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_yields_single_origin_point() {
        let g = generate(&profiles::center_dense(40, 13));
        let trace = minoan_er::Trace::new();
        let pts = progressive_curves(&g.dataset, &g.truth, &trace, 10);
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].comparisons, 0);
    }
}
