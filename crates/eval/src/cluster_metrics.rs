//! Cluster-level evaluation metrics.
//!
//! Pairwise precision/recall treats a 10-description cluster error the
//! same as 45 independent pair errors, which over-penalises big entities.
//! The clustering-evaluation literature therefore also reports:
//!
//! * **B-cubed precision/recall/F1** (Bagga & Baldwin) — per-description
//!   averages of "how pure is my cluster" / "how complete is my cluster".
//! * **Variation of information** (Meilă) — an information-theoretic
//!   distance between partitions (0 = identical), in nats.
//! * **Pairwise precision/recall/F1** — the classic pair counts, included
//!   so all three families print side by side.
//!
//! Inputs are partitions over the same universe `n`: predicted clusters
//! (non-singletons suffice; missing descriptions count as singletons) and
//! the ground-truth clusters from [`minoan_datagen::GroundTruth`].

use minoan_common::FxHashMap;

/// Dense cluster assignment: `assign[i]` = cluster id of description `i`.
/// Clusters are the given groups; anything not mentioned becomes its own
/// singleton.
pub fn assignment(n: usize, clusters: &[Vec<u32>]) -> Vec<u32> {
    let mut assign: Vec<u32> = vec![u32::MAX; n];
    for (cid, members) in clusters.iter().enumerate() {
        for &m in members {
            assert!(
                (m as usize) < n,
                "cluster member {m} outside universe of size {n}"
            );
            assert!(
                assign[m as usize] == u32::MAX,
                "description {m} in two clusters"
            );
            assign[m as usize] = cid as u32;
        }
    }
    let mut next = clusters.len() as u32;
    for slot in assign.iter_mut() {
        if *slot == u32::MAX {
            *slot = next;
            next += 1;
        }
    }
    assign
}

/// A precision/recall/F1 triple.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Prf {
    /// Precision.
    pub precision: f64,
    /// Recall.
    pub recall: f64,
    /// Harmonic mean.
    pub f1: f64,
}

impl Prf {
    fn new(precision: f64, recall: f64) -> Self {
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Self {
            precision,
            recall,
            f1,
        }
    }
}

/// All cluster metrics of one predicted partition against the truth.
#[derive(Clone, Copy, Debug)]
pub struct ClusterQuality {
    /// Pairwise precision/recall/F1.
    pub pairwise: Prf,
    /// B-cubed precision/recall/F1.
    pub bcubed: Prf,
    /// Variation of information, in nats (lower is better, 0 = identical).
    pub vi: f64,
}

/// Computes all metrics. `n` is the universe size; both partitions are
/// completed with singletons.
pub fn cluster_quality(n: usize, predicted: &[Vec<u32>], truth: &[Vec<u32>]) -> ClusterQuality {
    let pa = assignment(n, predicted);
    let ta = assignment(n, truth);
    ClusterQuality {
        pairwise: pairwise(&pa, &ta),
        bcubed: bcubed(&pa, &ta),
        vi: variation_of_information(&pa, &ta),
    }
}

fn cluster_sizes(assign: &[u32]) -> FxHashMap<u32, u64> {
    let mut sizes: FxHashMap<u32, u64> = FxHashMap::default();
    for &c in assign {
        *sizes.entry(c).or_insert(0) += 1;
    }
    sizes
}

/// Joint contingency counts `|P_i ∩ T_j|`.
fn contingency(pa: &[u32], ta: &[u32]) -> FxHashMap<(u32, u32), u64> {
    let mut joint: FxHashMap<(u32, u32), u64> = FxHashMap::default();
    for (&p, &t) in pa.iter().zip(ta) {
        *joint.entry((p, t)).or_insert(0) += 1;
    }
    joint
}

/// Pairwise P/R/F1 from the contingency table (pairs within clusters).
pub fn pairwise(pa: &[u32], ta: &[u32]) -> Prf {
    assert_eq!(pa.len(), ta.len(), "partitions over different universes");
    let c2 = |x: u64| x * x.saturating_sub(1) / 2;
    let predicted_pairs: u64 = cluster_sizes(pa).values().map(|&s| c2(s)).sum();
    let truth_pairs: u64 = cluster_sizes(ta).values().map(|&s| c2(s)).sum();
    let common_pairs: u64 = contingency(pa, ta).values().map(|&s| c2(s)).sum();
    let p = if predicted_pairs == 0 {
        1.0
    } else {
        common_pairs as f64 / predicted_pairs as f64
    };
    let r = if truth_pairs == 0 {
        1.0
    } else {
        common_pairs as f64 / truth_pairs as f64
    };
    Prf::new(p, r)
}

/// B-cubed P/R/F1.
pub fn bcubed(pa: &[u32], ta: &[u32]) -> Prf {
    assert_eq!(pa.len(), ta.len(), "partitions over different universes");
    let n = pa.len();
    if n == 0 {
        return Prf::new(1.0, 1.0);
    }
    let p_sizes = cluster_sizes(pa);
    let t_sizes = cluster_sizes(ta);
    let joint = contingency(pa, ta);
    // For each description i: precision_i = |P(i) ∩ T(i)| / |P(i)|,
    // recall_i = |P(i) ∩ T(i)| / |T(i)|. Summing per joint cell:
    // Σ_i precision_i = Σ_cells |cell|² / |P|.
    let mut cells: Vec<((u32, u32), u64)> = joint.iter().map(|(&k, &c)| (k, c)).collect();
    cells.sort_unstable_by_key(|&(k, _)| k);
    let mut psum = 0.0f64;
    let mut rsum = 0.0f64;
    for ((p, t), c) in cells {
        let c = c as f64;
        psum += c * c / p_sizes[&p] as f64;
        rsum += c * c / t_sizes[&t] as f64;
    }
    Prf::new(psum / n as f64, rsum / n as f64)
}

/// Variation of information `VI = H(P) + H(T) − 2·I(P; T)`, in nats.
pub fn variation_of_information(pa: &[u32], ta: &[u32]) -> f64 {
    assert_eq!(pa.len(), ta.len(), "partitions over different universes");
    let n = pa.len() as f64;
    if n == 0.0 {
        return 0.0;
    }
    let entropy = |sizes: &FxHashMap<u32, u64>| -> f64 {
        sizes
            .values()
            .map(|&s| {
                let p = s as f64 / n;
                -p * p.ln()
            })
            .sum()
    };
    let hp = entropy(&cluster_sizes(pa));
    let ht = entropy(&cluster_sizes(ta));
    let p_sizes = cluster_sizes(pa);
    let t_sizes = cluster_sizes(ta);
    let mut mi = 0.0f64;
    for (&(p, t), &c) in contingency(pa, ta).iter() {
        let pxy = c as f64 / n;
        let px = p_sizes[&p] as f64 / n;
        let py = t_sizes[&t] as f64 / n;
        mi += pxy * (pxy / (px * py)).ln();
    }
    (hp + ht - 2.0 * mi).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(n: usize, predicted: &[Vec<u32>], truth: &[Vec<u32>]) -> ClusterQuality {
        cluster_quality(n, predicted, truth)
    }

    #[test]
    fn identical_partitions_are_perfect() {
        let truth = vec![vec![0, 1, 2], vec![3, 4]];
        let m = q(6, &truth, &truth);
        assert_eq!(m.pairwise.f1, 1.0);
        assert!((m.bcubed.f1 - 1.0).abs() < 1e-12);
        assert!(m.vi < 1e-12);
    }

    #[test]
    fn all_singletons_vs_clusters() {
        let truth = vec![vec![0, 1], vec![2, 3]];
        let m = q(4, &[], &truth);
        // No predicted pairs → pairwise precision defined as 1, recall 0.
        assert_eq!(m.pairwise.precision, 1.0);
        assert_eq!(m.pairwise.recall, 0.0);
        // B-cubed: precision 1 (each singleton pure), recall 0.5.
        assert!((m.bcubed.precision - 1.0).abs() < 1e-12);
        assert!((m.bcubed.recall - 0.5).abs() < 1e-12);
        assert!(m.vi > 0.0);
    }

    #[test]
    fn one_big_cluster_has_perfect_recall_poor_precision() {
        let truth = vec![vec![0, 1], vec![2, 3]];
        let predicted = vec![vec![0, 1, 2, 3]];
        let m = q(4, &predicted, &truth);
        assert_eq!(m.pairwise.recall, 1.0);
        assert!((m.pairwise.precision - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(m.bcubed.recall, 1.0);
        assert!((m.bcubed.precision - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bcubed_is_gentler_than_pairwise_on_big_cluster_errors() {
        // Truth: one 6-cluster + singletons; predicted splits it 3/3.
        let truth = vec![vec![0, 1, 2, 3, 4, 5]];
        let predicted = vec![vec![0, 1, 2], vec![3, 4, 5]];
        let m = q(6, &predicted, &truth);
        // pairwise recall = 6/15 = 0.4; b-cubed recall = 0.5.
        assert!((m.pairwise.recall - 0.4).abs() < 1e-12);
        assert!((m.bcubed.recall - 0.5).abs() < 1e-12);
        assert!(m.bcubed.recall > m.pairwise.recall);
    }

    #[test]
    fn vi_is_symmetric() {
        let a = vec![vec![0, 1, 2], vec![3, 4]];
        let b = vec![vec![0, 1], vec![2, 3, 4]];
        let pa = assignment(5, &a);
        let pb = assignment(5, &b);
        let v1 = variation_of_information(&pa, &pb);
        let v2 = variation_of_information(&pb, &pa);
        assert!((v1 - v2).abs() < 1e-12);
        assert!(v1 > 0.0);
    }

    #[test]
    fn vi_upper_bound_is_log_n() {
        // Maximally different: all-singletons vs one cluster of n.
        let n = 16usize;
        let one: Vec<Vec<u32>> = vec![(0..n as u32).collect()];
        let m = q(n, &[], &one);
        assert!(m.vi <= (n as f64).ln() + 1e-9);
        assert!(
            (m.vi - (n as f64).ln()).abs() < 1e-9,
            "VI should hit ln n here"
        );
    }

    #[test]
    #[should_panic(expected = "two clusters")]
    fn overlapping_clusters_rejected() {
        assignment(4, &[vec![0, 1], vec![1, 2]]);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn out_of_universe_rejected() {
        assignment(2, &[vec![0, 5]]);
    }

    #[test]
    fn empty_universe() {
        let m = q(0, &[], &[]);
        assert_eq!(m.bcubed.f1, 1.0);
        assert_eq!(m.vi, 0.0);
    }
}
