//! CSV export of curves and tables.
//!
//! Experiment outputs are printed as plain-text tables/plots *and* written
//! as CSV so downstream analysis (spreadsheets, plotting scripts) can
//! consume them. The writer is deliberately minimal: RFC-4180-style
//! quoting, LF line endings, deterministic field order.

use crate::progressive::CurvePoint;
use std::io::Write;
use std::path::Path;

/// Quotes a CSV field when needed (commas, quotes, newlines).
pub fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Serialises rows into a CSV string with a header row.
pub fn to_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(
        &headers
            .iter()
            .map(|h| csv_field(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(
            &row.iter()
                .map(|c| csv_field(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
    }
    out
}

/// Serialises progressive curves as CSV: one row per checkpoint, one block
/// per labelled series (a `series` column keeps them distinguishable in a
/// single file).
pub fn curves_to_csv(series: &[(&str, &[CurvePoint])]) -> String {
    let headers = [
        "series",
        "comparisons",
        "recall",
        "precision",
        "attr_completeness",
        "entity_coverage",
        "rel_completeness",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (label, points) in series {
        for p in *points {
            rows.push(vec![
                label.to_string(),
                p.comparisons.to_string(),
                format!("{:.6}", p.recall),
                format!("{:.6}", p.precision),
                format!("{:.6}", p.attr_completeness),
                format!("{:.6}", p.entity_coverage),
                format!("{:.6}", p.rel_completeness),
            ]);
        }
    }
    to_csv(&headers, &rows)
}

/// Writes a CSV string to a file, creating parent directories.
pub fn write_csv(path: impl AsRef<Path>, content: &str) -> std::io::Result<()> {
    if let Some(parent) = path.as_ref().parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(content.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_fields_unquoted() {
        assert_eq!(csv_field("abc"), "abc");
        assert_eq!(csv_field("1.5"), "1.5");
    }

    #[test]
    fn special_fields_quoted() {
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_field("two\nlines"), "\"two\nlines\"");
    }

    #[test]
    fn table_round_trip_structure() {
        let csv = to_csv(
            &["x", "y"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4,5".into()]],
        );
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines, vec!["x,y", "1,2", "3,\"4,5\""]);
    }

    #[test]
    fn curves_csv_has_one_row_per_point() {
        let pts = vec![
            CurvePoint {
                comparisons: 10,
                recall: 0.5,
                precision: 1.0,
                attr_completeness: 0.25,
                entity_coverage: 0.5,
                rel_completeness: 0.1,
            },
            CurvePoint {
                comparisons: 20,
                recall: 0.75,
                precision: 0.9,
                attr_completeness: 0.5,
                entity_coverage: 0.6,
                rel_completeness: 0.2,
            },
        ];
        let csv = curves_to_csv(&[("prog", &pts), ("random", &pts[..1])]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + 2 + 1);
        assert!(lines[1].starts_with("prog,10,0.500000"));
        assert!(lines[3].starts_with("random,10"));
    }

    #[test]
    fn write_creates_parent_dirs() {
        let dir = std::env::temp_dir().join("minoan_eval_export_test/nested");
        let path = dir.join("out.csv");
        write_csv(&path, "a,b\n1,2\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a,b\n1,2\n");
        std::fs::remove_dir_all(dir.parent().unwrap()).ok();
    }
}
