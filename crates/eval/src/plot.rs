//! ASCII plotting of progressive curves.
//!
//! The paper's figures are recall/benefit-versus-budget curves. The
//! experiment harness renders them directly in the terminal so a run's
//! output is self-contained — no plotting toolchain required. Multiple
//! series share one canvas, each with its own glyph, and crossovers (the
//! thing the figures exist to show) are visible at a glance.

/// One named series of `(x, y)` points.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Points, x ascending (not required but recommended).
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Constructor.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self {
            label: label.into(),
            points,
        }
    }
}

/// Glyphs assigned to series in order.
const GLYPHS: [char; 8] = ['*', '+', 'o', 'x', '#', '@', '%', '&'];

/// Renders series on a `width × height` character canvas with axes and a
/// legend. Y is clamped to `[0, y_max]` (pass 1.0 for recall-style curves);
/// X spans the data range.
///
/// # Panics
/// Panics if `width < 16`, `height < 4`, or `y_max ≤ 0`.
pub fn render_plot(series: &[Series], width: usize, height: usize, y_max: f64) -> String {
    assert!(width >= 16, "plot too narrow");
    assert!(height >= 4, "plot too short");
    assert!(y_max > 0.0, "y_max must be positive");
    let x_max = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.0))
        .fold(0.0f64, f64::max)
        .max(1e-12);

    let mut canvas = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            let cx = ((x / x_max) * (width - 1) as f64).round() as usize;
            let cy = ((y.clamp(0.0, y_max) / y_max) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy;
            let col = cx.min(width - 1);
            // First-come priority; later series fill only blank cells so
            // every curve stays readable where they overlap.
            if canvas[row][col] == ' ' {
                canvas[row][col] = glyph;
            }
        }
    }

    let mut out = String::with_capacity((width + 12) * (height + 3));
    for (i, row) in canvas.iter().enumerate() {
        let y_val = y_max * (height - 1 - i) as f64 / (height - 1) as f64;
        out.push_str(&format!("{y_val:6.2} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("       +{}\n", "-".repeat(width)));
    out.push_str(&format!(
        "        0{:>width$.0}\n",
        x_max,
        width = width - 1
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!(
            "        {} {}\n",
            GLYPHS[si % GLYPHS.len()],
            s.label
        ));
    }
    out
}

/// Convenience: plots recall-vs-comparisons curves from
/// [`crate::progressive::CurvePoint`] series.
pub fn plot_recall_curves(
    series: &[(&str, &[crate::progressive::CurvePoint])],
    width: usize,
    height: usize,
) -> String {
    let converted: Vec<Series> = series
        .iter()
        .map(|(label, pts)| {
            Series::new(
                *label,
                pts.iter()
                    .map(|p| (p.comparisons as f64, p.recall))
                    .collect(),
            )
        })
        .collect();
    render_plot(&converted, width, height, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diagonal() -> Series {
        Series::new(
            "diag",
            (0..=10).map(|i| (i as f64, i as f64 / 10.0)).collect(),
        )
    }

    #[test]
    fn renders_axes_and_legend() {
        let text = render_plot(&[diagonal()], 40, 10, 1.0);
        assert!(text.contains('|'), "y axis missing");
        assert!(text.contains('+'), "origin missing");
        assert!(text.contains("* diag"), "legend missing");
    }

    #[test]
    fn diagonal_occupies_both_corners() {
        let text = render_plot(&[diagonal()], 40, 10, 1.0);
        let lines: Vec<&str> = text.lines().collect();
        // Top row contains the final point, bottom data row the origin.
        assert!(lines[0].contains('*'), "top row empty: {:?}", lines[0]);
        assert!(lines[9].contains('*'), "bottom row empty: {:?}", lines[9]);
    }

    #[test]
    fn multiple_series_use_distinct_glyphs() {
        let a = diagonal();
        let b = Series::new("flat", (0..=10).map(|i| (i as f64, 0.5)).collect());
        let text = render_plot(&[a, b], 40, 10, 1.0);
        assert!(text.contains('*'));
        assert!(text.contains('+'));
        assert!(text.contains("+ flat"));
    }

    #[test]
    fn y_values_above_max_are_clamped() {
        let s = Series::new("spike", vec![(1.0, 5.0)]);
        let text = render_plot(&[s], 20, 5, 1.0);
        // Must not panic; the spike lands on the top row.
        assert!(text.lines().next().unwrap().contains('*'));
    }

    #[test]
    fn empty_series_render_blank_canvas() {
        let text = render_plot(&[Series::new("none", vec![])], 20, 5, 1.0);
        assert!(text.contains("none"));
    }

    #[test]
    #[should_panic(expected = "narrow")]
    fn tiny_canvas_rejected() {
        render_plot(&[], 5, 5, 1.0);
    }

    #[test]
    fn recall_curve_wrapper() {
        use crate::progressive::CurvePoint;
        let pts: Vec<CurvePoint> = (0..5)
            .map(|i| CurvePoint {
                comparisons: i * 10,
                recall: i as f64 / 4.0,
                precision: 1.0,
                attr_completeness: 0.0,
                entity_coverage: 0.0,
                rel_completeness: 0.0,
            })
            .collect();
        let text = plot_recall_curves(&[("prog", &pts)], 30, 8);
        assert!(text.contains("prog"));
    }
}
