//! Ground-truth evaluation for the MinoanER reproduction.
//!
//! * [`metrics`] — static quality: blocking PC/PQ/RR and matching
//!   precision/recall/F1 against a [`minoan_datagen::GroundTruth`].
//! * [`progressive`] — progressive quality from a resolution [`Trace`]:
//!   recall@budget curves, their normalised AUC, and the paper's three
//!   data-quality dimensions over consumed budget (attribute completeness,
//!   entity coverage, relationship completeness).
//! * [`report`] — plain-text tables and series used by the experiment
//!   harness (`minoan-bench`) to print paper-style outputs.
//!
//! [`Trace`]: minoan_er::Trace

#![forbid(unsafe_code)]

pub mod bootstrap;
pub mod cluster_metrics;
pub mod export;
pub mod metrics;
pub mod plot;
pub mod progressive;
pub mod report;

pub use bootstrap::{bootstrap_interval, mean_interval, proportion_interval, Interval};
pub use cluster_metrics::{cluster_quality, ClusterQuality, Prf};
pub use export::{curves_to_csv, to_csv, write_csv};
pub use metrics::{BlockingQuality, MatchQuality};
pub use plot::{plot_recall_curves, render_plot, Series};
pub use progressive::{progressive_curves, recall_auc, CurvePoint};
pub use report::Table;
