//! Static quality metrics against the ground truth.

use minoan_datagen::GroundTruth;
use minoan_rdf::{Dataset, EntityId, KbId};

/// Quality of a blocking / meta-blocking candidate set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlockingQuality {
    /// Pair completeness: fraction of ground-truth pairs present among the
    /// candidates (the blocking recall).
    pub pc: f64,
    /// Pairs quality: fraction of candidates that are true matches (the
    /// blocking precision).
    pub pq: f64,
    /// Reduction ratio vs the brute-force comparison space.
    pub rr: f64,
    /// Number of (distinct) candidate comparisons.
    pub comparisons: u64,
    /// Brute-force comparison count the RR is relative to.
    pub brute_force: u64,
}

impl BlockingQuality {
    /// Harmonic mean of PC and RR (the usual blocking summary).
    pub fn cc_f1(&self) -> f64 {
        minoan_common::stats::harmonic_mean(self.pc, self.rr)
    }
}

/// Brute-force comparison count of a dataset: all cross-KB pairs for
/// clean–clean data (`kb_count > 1`), otherwise all pairs.
pub fn brute_force_comparisons(dataset: &Dataset) -> u64 {
    if dataset.kb_count() > 1 {
        let sizes: Vec<u64> = (0..dataset.kb_count())
            .map(|k| dataset.entities_of_kb(KbId(k as u16)).len() as u64)
            .collect();
        let total: u64 = sizes.iter().sum();
        // Σ_{i<j} n_i·n_j = (total² − Σ n_i²) / 2
        (total * total - sizes.iter().map(|s| s * s).sum::<u64>()) / 2
    } else {
        let n = dataset.len() as u64;
        n * n.saturating_sub(1) / 2
    }
}

/// Evaluates a candidate pair set against the truth.
///
/// `candidates` must be distinct normalised pairs (`a < b`); duplicates
/// would be double-counted.
pub fn blocking_quality(
    dataset: &Dataset,
    truth: &GroundTruth,
    candidates: &[(EntityId, EntityId)],
) -> BlockingQuality {
    let brute = brute_force_comparisons(dataset);
    let found = candidates
        .iter()
        .filter(|&&(a, b)| truth.is_match(a, b))
        .count() as u64;
    let total_truth = truth.matching_pairs();
    let comparisons = candidates.len() as u64;
    BlockingQuality {
        pc: if total_truth == 0 {
            0.0
        } else {
            found as f64 / total_truth as f64
        },
        pq: if comparisons == 0 {
            0.0
        } else {
            found as f64 / comparisons as f64
        },
        rr: if brute == 0 {
            0.0
        } else {
            1.0 - comparisons as f64 / brute as f64
        },
        comparisons,
        brute_force: brute,
    }
}

/// Quality of a final match set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MatchQuality {
    /// Fraction of emitted matches that are correct.
    pub precision: f64,
    /// Fraction of ground-truth pairs emitted.
    pub recall: f64,
    /// Harmonic mean of the two.
    pub f1: f64,
    /// True positives.
    pub tp: u64,
    /// Emitted matches.
    pub emitted: u64,
}

/// Evaluates emitted matches against the truth.
pub fn match_quality(truth: &GroundTruth, matches: &[(EntityId, EntityId)]) -> MatchQuality {
    let tp = matches
        .iter()
        .filter(|&&(a, b)| truth.is_match(a, b))
        .count() as u64;
    let emitted = matches.len() as u64;
    let precision = if emitted == 0 {
        0.0
    } else {
        tp as f64 / emitted as f64
    };
    let recall = if truth.matching_pairs() == 0 {
        0.0
    } else {
        tp as f64 / truth.matching_pairs() as f64
    };
    MatchQuality {
        precision,
        recall,
        f1: minoan_common::stats::harmonic_mean(precision, recall),
        tp,
        emitted,
    }
}

/// Convenience: evaluates a [`minoan_er::Resolution`]'s matches.
pub fn resolution_quality(truth: &GroundTruth, resolution: &minoan_er::Resolution) -> MatchQuality {
    let pairs: Vec<(EntityId, EntityId)> =
        resolution.matches.iter().map(|&(a, b, _)| (a, b)).collect();
    match_quality(truth, &pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minoan_datagen::{generate, profiles};

    #[test]
    fn brute_force_counts() {
        let g = generate(&profiles::center_dense(60, 1));
        let bf = brute_force_comparisons(&g.dataset);
        let n0 = g.dataset.entities_of_kb(KbId(0)).len() as u64;
        let n1 = g.dataset.entities_of_kb(KbId(1)).len() as u64;
        assert_eq!(bf, n0 * n1);
        let d = generate(&profiles::dirty_single(30, 1));
        let n = d.dataset.len() as u64;
        assert_eq!(brute_force_comparisons(&d.dataset), n * (n - 1) / 2);
    }

    #[test]
    fn perfect_candidates_score_perfectly() {
        let g = generate(&profiles::center_dense(50, 2));
        let candidates: Vec<_> = g.truth.matching_pair_iter().collect();
        let q = blocking_quality(&g.dataset, &g.truth, &candidates);
        assert_eq!(q.pc, 1.0);
        assert_eq!(q.pq, 1.0);
        assert!(q.rr > 0.9);
        assert!(q.cc_f1() > 0.9);
    }

    #[test]
    fn empty_candidates_score_zero_pc() {
        let g = generate(&profiles::center_dense(50, 3));
        let q = blocking_quality(&g.dataset, &g.truth, &[]);
        assert_eq!(q.pc, 0.0);
        assert_eq!(q.pq, 0.0);
        assert_eq!(q.rr, 1.0);
    }

    #[test]
    fn match_quality_mixed() {
        let g = generate(&profiles::center_dense(50, 4));
        let mut pairs: Vec<_> = g.truth.matching_pair_iter().take(10).collect();
        let total = g.truth.matching_pairs();
        // Add two false pairs (same KB entities can never match).
        let kb0 = g.dataset.entities_of_kb(KbId(0));
        pairs.push((kb0[0], kb0[1]));
        pairs.push((kb0[2], kb0[3]));
        let q = match_quality(&g.truth, &pairs);
        assert_eq!(q.tp, 10);
        assert_eq!(q.emitted, 12);
        assert!((q.precision - 10.0 / 12.0).abs() < 1e-12);
        assert!((q.recall - 10.0 / total as f64).abs() < 1e-12);
        assert!(q.f1 > 0.0 && q.f1 < 1.0);
    }

    #[test]
    fn empty_matches_are_zero() {
        let g = generate(&profiles::center_dense(30, 5));
        let q = match_quality(&g.truth, &[]);
        assert_eq!((q.precision, q.recall, q.f1), (0.0, 0.0, 0.0));
    }
}
