//! Bootstrap confidence intervals.
//!
//! Synthetic-world experiments are cheap to re-run, but each *run* is one
//! sample; reporting a single recall/precision number hides the variance
//! the generator's noise induces. The harness therefore bootstrap-resamples
//! the per-decision outcomes of a trace to attach percentile confidence
//! intervals to every headline metric — the difference between "the
//! progressive scheduler wins" and "the progressive scheduler wins with a
//! CI that excludes the baseline".

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// A bootstrap percentile interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interval {
    /// Point estimate on the original sample.
    pub estimate: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
}

impl Interval {
    /// Whether the interval excludes `value` (a crude significance check).
    pub fn excludes(&self, value: f64) -> bool {
        value < self.lo || value > self.hi
    }

    /// Renders as `est [lo, hi]` with 3 decimals.
    pub fn render(&self) -> String {
        format!("{:.3} [{:.3}, {:.3}]", self.estimate, self.lo, self.hi)
    }
}

/// Bootstrap percentile interval of `statistic` over resamples of `data`.
///
/// `level` is the central coverage (e.g. 0.95); resampling is seeded and
/// deterministic.
///
/// # Panics
/// Panics if `data` is empty, `resamples == 0`, or `level ∉ (0, 1)`.
pub fn bootstrap_interval<T: Copy>(
    data: &[T],
    mut statistic: impl FnMut(&[T]) -> f64,
    resamples: usize,
    level: f64,
    seed: u64,
) -> Interval {
    assert!(!data.is_empty(), "cannot bootstrap an empty sample");
    assert!(resamples > 0, "need at least one resample");
    assert!(level > 0.0 && level < 1.0, "level must be in (0, 1)");
    let estimate = statistic(data);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xb007);
    let mut stats: Vec<f64> = Vec::with_capacity(resamples);
    let mut resample: Vec<T> = Vec::with_capacity(data.len());
    for _ in 0..resamples {
        resample.clear();
        for _ in 0..data.len() {
            resample.push(data[rng.gen_range(0..data.len())]);
        }
        stats.push(statistic(&resample));
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("finite statistics"));
    let alpha = (1.0 - level) / 2.0;
    let lo_idx = ((stats.len() as f64 * alpha) as usize).min(stats.len() - 1);
    let hi_idx = ((stats.len() as f64 * (1.0 - alpha)) as usize).min(stats.len() - 1);
    Interval {
        estimate,
        lo: stats[lo_idx],
        hi: stats[hi_idx],
    }
}

/// Bootstrap CI of a proportion (e.g. precision from per-match correctness
/// flags).
pub fn proportion_interval(flags: &[bool], resamples: usize, level: f64, seed: u64) -> Interval {
    let data: Vec<f64> = flags.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
    bootstrap_interval(
        &data,
        |xs| xs.iter().sum::<f64>() / xs.len() as f64,
        resamples,
        level,
        seed,
    )
}

/// Bootstrap CI of the mean of `values`.
pub fn mean_interval(values: &[f64], resamples: usize, level: f64, seed: u64) -> Interval {
    bootstrap_interval(
        values,
        |xs| xs.iter().sum::<f64>() / xs.len() as f64,
        resamples,
        level,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_data_gives_degenerate_interval() {
        let data = vec![0.5f64; 50];
        let iv = mean_interval(&data, 200, 0.95, 1);
        assert_eq!(iv.estimate, 0.5);
        assert_eq!(iv.lo, 0.5);
        assert_eq!(iv.hi, 0.5);
        assert!(!iv.excludes(0.5));
        assert!(iv.excludes(0.6));
    }

    #[test]
    fn interval_brackets_the_estimate() {
        let data: Vec<f64> = (0..100).map(|i| (i % 7) as f64).collect();
        let iv = mean_interval(&data, 500, 0.95, 2);
        assert!(iv.lo <= iv.estimate && iv.estimate <= iv.hi);
        assert!(iv.hi - iv.lo < 1.5, "CI suspiciously wide: {iv:?}");
    }

    #[test]
    fn proportion_interval_tracks_true_rate() {
        let flags: Vec<bool> = (0..200).map(|i| i % 4 != 0).collect(); // 75%
        let iv = proportion_interval(&flags, 500, 0.95, 3);
        assert!((iv.estimate - 0.75).abs() < 1e-12);
        assert!(iv.lo > 0.6 && iv.hi < 0.9);
    }

    #[test]
    fn deterministic_given_seed() {
        let data: Vec<f64> = (0..60).map(|i| i as f64).collect();
        let a = mean_interval(&data, 300, 0.9, 7);
        let b = mean_interval(&data, 300, 0.9, 7);
        assert_eq!(a, b);
        let c = mean_interval(&data, 300, 0.9, 8);
        assert!(
            a.lo != c.lo || a.hi != c.hi,
            "different seed should perturb the CI"
        );
    }

    #[test]
    fn wider_level_gives_wider_interval() {
        let data: Vec<f64> = (0..80).map(|i| ((i * 37) % 11) as f64).collect();
        let narrow = mean_interval(&data, 400, 0.5, 5);
        let wide = mean_interval(&data, 400, 0.99, 5);
        assert!(wide.hi - wide.lo >= narrow.hi - narrow.lo);
    }

    #[test]
    fn render_format() {
        let iv = Interval {
            estimate: 0.8125,
            lo: 0.75,
            hi: 0.875,
        };
        assert_eq!(iv.render(), "0.812 [0.750, 0.875]");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_rejected() {
        mean_interval(&[], 10, 0.95, 0);
    }
}
