//! Plain-text tables and series for the experiment harness.

use std::fmt::Write as _;

/// A simple aligned plain-text table.
///
/// ```
/// use minoan_eval::Table;
/// let mut t = Table::new(vec!["scheme", "PC", "PQ"]);
/// t.row(vec!["CBS".into(), "0.98".into(), "0.12".into()]);
/// let s = t.to_string();
/// assert!(s.contains("scheme"));
/// assert!(s.contains("CBS"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Self {
        Self {
            headers: headers.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must have as many cells as there are headers.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let render = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| -> std::fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{c:<w$}", w = widths[i])?;
            }
            writeln!(f)
        };
        render(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with 3 decimals (the house style for metric cells).
pub fn fmt3(v: f64) -> String {
    format!("{v:.3}")
}

/// Renders aligned `(x, series…)` rows — the textual stand-in for a figure.
/// `series` pairs a label with values aligned to `xs`.
pub fn render_series(x_label: &str, xs: &[u64], series: &[(&str, Vec<f64>)]) -> String {
    let mut t = Table::new(
        std::iter::once(x_label)
            .chain(series.iter().map(|(l, _)| *l))
            .collect(),
    );
    for (i, &x) in xs.iter().enumerate() {
        let mut row = vec![x.to_string()];
        for (_, ys) in series {
            row.push(ys.get(i).map(|v| fmt3(*v)).unwrap_or_else(|| "-".into()));
        }
        t.row(row);
    }
    let mut out = String::new();
    let _ = write!(out, "{t}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(vec!["name", "v"]);
        t.row(vec!["long-name-here".into(), "1".into()]);
        t.row(vec!["x".into(), "22".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows same width.
        assert_eq!(
            lines[0].len(),
            lines[2].trim_end().len().max(lines[0].len())
        );
        assert!(lines[2].starts_with("long-name-here"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn series_rendering() {
        let s = render_series(
            "budget",
            &[0, 100, 200],
            &[
                ("progressive", vec![0.0, 0.5, 0.9]),
                ("random", vec![0.0, 0.2, 0.4]),
            ],
        );
        assert!(s.contains("budget"));
        assert!(s.contains("0.500"));
        assert!(s.contains("random"));
        assert_eq!(s.lines().count(), 5);
    }

    #[test]
    fn fmt3_rounds() {
        assert_eq!(fmt3(0.12345), "0.123");
        assert_eq!(fmt3(1.0), "1.000");
    }

    #[test]
    fn missing_series_values_render_dash() {
        let s = render_series("x", &[1, 2], &[("short", vec![0.1])]);
        assert!(s.contains('-'));
    }
}
